//! Network-on-chip style workloads: a mesh of tiles with classic traffic
//! patterns.
//!
//! The paper is early NoC-synthesis work (it seeded the COSI line of
//! tools), so a mesh-tile workload generator belongs in its evaluation
//! kit. Tiles sit on a regular grid; the traffic pattern decides the
//! channel set:
//!
//! * [`TrafficPattern::UniformRandom`] — random tile pairs;
//! * [`TrafficPattern::Transpose`] — tile `(i, j)` talks to `(j, i)`,
//!   the classic adversarial pattern;
//! * [`TrafficPattern::Hotspot`] — every listed tile talks to one hot
//!   tile (a memory controller), the merge-friendly pattern.
//!
//! Distances are Manhattan (on-chip wiring); bandwidths are drawn from a
//! configured range so merging stays possible on 1 Gb/s wires.

use ccs_core::constraint::ConstraintGraph;
use ccs_core::units::Bandwidth;
use ccs_geom::{Norm, Point2};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which channels a [`NocConfig`] generates.
#[derive(Debug, Clone, PartialEq)]
pub enum TrafficPattern {
    /// `channels` random ordered tile pairs (no self-traffic).
    UniformRandom {
        /// Number of channels to draw.
        channels: usize,
    },
    /// One channel from every off-diagonal tile `(r, c)` to `(c, r)`
    /// (requires a square mesh).
    Transpose,
    /// One channel from every tile (except the hotspot itself) to the
    /// hotspot tile.
    Hotspot {
        /// Grid coordinates `(row, col)` of the hot tile.
        hot: (usize, usize),
    },
}

/// Configuration for [`noc_instance`].
#[derive(Debug, Clone, PartialEq)]
pub struct NocConfig {
    /// Mesh rows.
    pub rows: usize,
    /// Mesh columns.
    pub cols: usize,
    /// Tile pitch, mm.
    pub tile_mm: f64,
    /// Traffic pattern.
    pub pattern: TrafficPattern,
    /// Channel bandwidths drawn uniformly from this range, Mb/s.
    pub bandwidth_mbps: (f64, f64),
    /// RNG seed (bandwidths and the uniform pattern).
    pub seed: u64,
}

impl Default for NocConfig {
    fn default() -> Self {
        NocConfig {
            rows: 4,
            cols: 4,
            tile_mm: 1.2,
            pattern: TrafficPattern::Hotspot { hot: (1, 1) },
            bandwidth_mbps: (50.0, 250.0),
            seed: 0x70C,
        }
    }
}

/// Tile centre position for grid coordinates `(row, col)`.
pub fn tile_position(cfg: &NocConfig, row: usize, col: usize) -> Point2 {
    Point2::new(
        (col as f64 + 0.5) * cfg.tile_mm,
        (row as f64 + 0.5) * cfg.tile_mm,
    )
}

/// Generates the mesh instance.
///
/// # Panics
///
/// Panics on a degenerate configuration: zero-sized mesh, non-positive
/// tile pitch or bandwidths, a non-square mesh with
/// [`TrafficPattern::Transpose`], or a hotspot outside the mesh.
pub fn noc_instance(cfg: &NocConfig) -> ConstraintGraph {
    assert!(cfg.rows > 0 && cfg.cols > 0, "mesh must be non-empty");
    assert!(cfg.tile_mm > 0.0, "tile pitch must be positive");
    assert!(
        cfg.bandwidth_mbps.0 > 0.0 && cfg.bandwidth_mbps.1 >= cfg.bandwidth_mbps.0,
        "bad bandwidth range"
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut pairs: Vec<((usize, usize), (usize, usize))> = Vec::new();
    match &cfg.pattern {
        TrafficPattern::UniformRandom { channels } => {
            assert!(
                cfg.rows * cfg.cols > 1,
                "uniform traffic needs at least two tiles"
            );
            let mut guard = 0;
            while pairs.len() < *channels {
                guard += 1;
                assert!(guard < channels * 1000 + 1000, "could not draw channels");
                let s = (rng.random_range(0..cfg.rows), rng.random_range(0..cfg.cols));
                let d = (rng.random_range(0..cfg.rows), rng.random_range(0..cfg.cols));
                if s != d {
                    pairs.push((s, d));
                }
            }
        }
        TrafficPattern::Transpose => {
            assert_eq!(cfg.rows, cfg.cols, "transpose needs a square mesh");
            for r in 0..cfg.rows {
                for c in 0..cfg.cols {
                    if r != c {
                        pairs.push(((r, c), (c, r)));
                    }
                }
            }
        }
        TrafficPattern::Hotspot { hot } => {
            assert!(
                hot.0 < cfg.rows && hot.1 < cfg.cols,
                "hotspot outside the mesh"
            );
            for r in 0..cfg.rows {
                for c in 0..cfg.cols {
                    if (r, c) != *hot {
                        pairs.push(((r, c), *hot));
                    }
                }
            }
        }
    }

    let mut b = ConstraintGraph::builder(Norm::Manhattan);
    for (i, (s, d)) in pairs.iter().enumerate() {
        let bw =
            Bandwidth::from_mbps(rng.random_range(cfg.bandwidth_mbps.0..=cfg.bandwidth_mbps.1));
        let out = b.add_port(
            format!("t{}_{}.out{i}", s.0, s.1),
            tile_position(cfg, s.0, s.1),
        );
        let inp = b.add_port(
            format!("t{}_{}.in{i}", d.0, d.1),
            tile_position(cfg, d.0, d.1),
        );
        b.add_channel(out, inp, bw)
            .expect("mesh channels are valid");
    }
    b.build().expect("mesh instance is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hotspot_channel_count() {
        let cfg = NocConfig::default(); // 4×4, hotspot
        let g = noc_instance(&cfg);
        assert_eq!(g.arc_count(), 15);
        assert_eq!(g.norm(), Norm::Manhattan);
    }

    #[test]
    fn hotspot_all_point_at_hot_tile() {
        let cfg = NocConfig::default();
        let g = noc_instance(&cfg);
        let hot = tile_position(&cfg, 1, 1);
        for (id, a) in g.arcs() {
            assert_eq!(g.position(a.dst), hot, "{id}");
        }
    }

    #[test]
    fn transpose_count_and_symmetry() {
        let cfg = NocConfig {
            pattern: TrafficPattern::Transpose,
            ..NocConfig::default()
        };
        let g = noc_instance(&cfg);
        assert_eq!(g.arc_count(), 12); // 16 tiles minus 4 diagonal
                                       // Each channel's reverse also exists as another channel.
        let endpoints: Vec<(Point2, Point2)> = g
            .arcs()
            .map(|(_, a)| (g.position(a.src), g.position(a.dst)))
            .collect();
        for &(s, d) in &endpoints {
            assert!(endpoints.iter().any(|&(s2, d2)| s2 == d && d2 == s));
        }
    }

    #[test]
    fn uniform_is_deterministic_per_seed() {
        let cfg = NocConfig {
            pattern: TrafficPattern::UniformRandom { channels: 9 },
            ..NocConfig::default()
        };
        assert_eq!(noc_instance(&cfg), noc_instance(&cfg));
        let other = NocConfig {
            seed: 99,
            ..cfg.clone()
        };
        assert_ne!(noc_instance(&cfg), noc_instance(&other));
    }

    #[test]
    fn bandwidths_in_range() {
        let cfg = NocConfig::default();
        let g = noc_instance(&cfg);
        for (_, a) in g.arcs() {
            assert!(a.bandwidth.as_mbps() >= cfg.bandwidth_mbps.0);
            assert!(a.bandwidth.as_mbps() <= cfg.bandwidth_mbps.1);
        }
    }

    #[test]
    #[should_panic(expected = "square mesh")]
    fn transpose_rejects_rectangles() {
        let cfg = NocConfig {
            rows: 2,
            cols: 3,
            pattern: TrafficPattern::Transpose,
            ..NocConfig::default()
        };
        let _ = noc_instance(&cfg);
    }

    #[test]
    #[should_panic(expected = "outside the mesh")]
    fn hotspot_must_be_inside() {
        let cfg = NocConfig {
            pattern: TrafficPattern::Hotspot { hot: (9, 9) },
            ..NocConfig::default()
        };
        let _ = noc_instance(&cfg);
    }

    #[test]
    fn synthesis_on_hotspot_merges_wiring() {
        // Moderate-rate channels into one hot tile: trunk sharing must
        // beat dedicated wiring (this is the NoC motivation in one test).
        let cfg = NocConfig {
            bandwidth_mbps: (50.0, 120.0),
            ..NocConfig::default()
        };
        let g = noc_instance(&cfg);
        // Per-length on-chip wiring cost model so savings are continuous.
        let lib = ccs_core::library::Library::builder()
            .link(ccs_core::library::Link::per_length(
                "wire",
                Bandwidth::from_gbps(1.0),
                1.0,
            ))
            .node(ccs_core::library::NodeKind::Repeater, 0.0)
            .node(ccs_core::library::NodeKind::Mux, 0.1)
            .node(ccs_core::library::NodeKind::Demux, 0.1)
            .build()
            .unwrap();
        let mut sc = ccs_core::synthesis::SynthesisConfig::default();
        sc.merge.max_k = Some(4);
        let r = ccs_core::synthesis::Synthesizer::new(&g, &lib)
            .with_config(sc)
            .run()
            .unwrap();
        assert!(
            r.total_cost() < r.stats.p2p_cost,
            "hotspot traffic should merge: {} vs {}",
            r.total_cost(),
            r.stats.p2p_cost
        );
        assert!(ccs_core::check::verify(&g, &lib, &r.implementation).is_empty());
    }
}

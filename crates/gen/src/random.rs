//! Seeded random instance generators for scaling studies and property
//! tests.
//!
//! Both generators are deterministic functions of their configuration
//! (including the seed), so every benchmark run and test failure is
//! reproducible.

use ccs_core::constraint::{ConstraintGraph, PortId};
use ccs_core::units::Bandwidth;
use ccs_geom::{Norm, Point2};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for [`clustered_wan`].
#[derive(Debug, Clone, PartialEq)]
pub struct ClusteredWanConfig {
    /// Number of geographic clusters.
    pub clusters: usize,
    /// Nodes per cluster.
    pub nodes_per_cluster: usize,
    /// Number of channels to draw.
    pub channels: usize,
    /// Side of the square world, km.
    pub world_km: f64,
    /// Half-side of the square each cluster's nodes scatter over, km.
    pub cluster_spread_km: f64,
    /// Channel bandwidths are drawn uniformly from this range (Mb/s).
    pub bandwidth_mbps: (f64, f64),
    /// Fraction of channels drawn within a single cluster (the rest cross
    /// clusters — those are the merge opportunities).
    pub intra_cluster_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ClusteredWanConfig {
    fn default() -> Self {
        ClusteredWanConfig {
            clusters: 3,
            nodes_per_cluster: 4,
            channels: 12,
            world_km: 200.0,
            cluster_spread_km: 6.0,
            bandwidth_mbps: (2.0, 10.0),
            intra_cluster_fraction: 0.5,
            seed: 0xC0FFEE,
        }
    }
}

/// Generates a clustered WAN: nodes in tight geographic clusters spread
/// across a large world, with a mix of intra- and inter-cluster channels
/// (inter-cluster channels from the same cluster pair are exactly the
/// profitable mergings the paper targets).
///
/// # Panics
///
/// Panics if the configuration has zero clusters, nodes, or channels, or
/// a non-positive bandwidth range.
pub fn clustered_wan(cfg: &ClusteredWanConfig) -> ConstraintGraph {
    assert!(cfg.clusters > 0 && cfg.nodes_per_cluster > 0 && cfg.channels > 0);
    assert!(cfg.bandwidth_mbps.0 > 0.0 && cfg.bandwidth_mbps.1 >= cfg.bandwidth_mbps.0);
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    // Place cluster centres, then nodes around them.
    let mut nodes: Vec<(usize, Point2)> = Vec::new(); // (cluster, pos)
    for c in 0..cfg.clusters {
        let centre = Point2::new(
            rng.random_range(0.0..cfg.world_km),
            rng.random_range(0.0..cfg.world_km),
        );
        for _ in 0..cfg.nodes_per_cluster {
            let p = Point2::new(
                centre.x + rng.random_range(-cfg.cluster_spread_km..cfg.cluster_spread_km),
                centre.y + rng.random_range(-cfg.cluster_spread_km..cfg.cluster_spread_km),
            );
            nodes.push((c, p));
        }
    }

    let mut b = ConstraintGraph::builder(Norm::Euclidean);
    let mut added = 0usize;
    let mut guard = 0usize;
    while added < cfg.channels {
        guard += 1;
        assert!(
            guard < cfg.channels * 1000,
            "could not draw enough valid channels; check the configuration"
        );
        let intra = rng.random_range(0.0..1.0) < cfg.intra_cluster_fraction;
        let (si, di) = if intra {
            let c = rng.random_range(0..cfg.clusters);
            let base = c * cfg.nodes_per_cluster;
            let s = base + rng.random_range(0..cfg.nodes_per_cluster);
            let d = base + rng.random_range(0..cfg.nodes_per_cluster);
            (s, d)
        } else {
            (
                rng.random_range(0..nodes.len()),
                rng.random_range(0..nodes.len()),
            )
        };
        if si == di {
            continue;
        }
        let (_, sp) = nodes[si];
        let (_, dp) = nodes[di];
        if Norm::Euclidean.distance(sp, dp) <= 1e-9 {
            continue;
        }
        let bw =
            Bandwidth::from_mbps(rng.random_range(cfg.bandwidth_mbps.0..=cfg.bandwidth_mbps.1));
        let out = b.add_port(format!("n{si}.out{added}"), sp);
        let inp = b.add_port(format!("n{di}.in{added}"), dp);
        if b.add_channel(out, inp, bw).is_ok() {
            added += 1;
        }
    }
    b.build().expect("generated instance is valid")
}

/// Configuration for [`soc_floorplan`].
#[derive(Debug, Clone, PartialEq)]
pub struct SocConfig {
    /// Number of modules on the die.
    pub modules: usize,
    /// Number of channels.
    pub channels: usize,
    /// Die side, mm.
    pub die_mm: f64,
    /// Channel bandwidths, Mb/s.
    pub bandwidth_mbps: (f64, f64),
    /// RNG seed.
    pub seed: u64,
}

impl Default for SocConfig {
    fn default() -> Self {
        SocConfig {
            modules: 9,
            channels: 14,
            die_mm: 5.0,
            bandwidth_mbps: (100.0, 1000.0),
            seed: 0x50C,
        }
    }
}

/// Generates a random SoC floorplan: modules on a jittered grid over the
/// die, random channels between distinct modules, Manhattan norm.
///
/// # Panics
///
/// Panics if the configuration has fewer than two modules or zero
/// channels.
pub fn soc_floorplan(cfg: &SocConfig) -> ConstraintGraph {
    assert!(cfg.modules >= 2 && cfg.channels > 0);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let grid = (cfg.modules as f64).sqrt().ceil() as usize;
    let cell = cfg.die_mm / grid as f64;
    let mut positions = Vec::with_capacity(cfg.modules);
    for m in 0..cfg.modules {
        let gx = (m % grid) as f64;
        let gy = (m / grid) as f64;
        positions.push(Point2::new(
            (gx + rng.random_range(0.2..0.8)) * cell,
            (gy + rng.random_range(0.2..0.8)) * cell,
        ));
    }
    let mut b = ConstraintGraph::builder(Norm::Manhattan);
    let mut added = 0usize;
    let mut guard = 0usize;
    while added < cfg.channels {
        guard += 1;
        assert!(guard < cfg.channels * 1000, "could not draw valid channels");
        let s = rng.random_range(0..cfg.modules);
        let d = rng.random_range(0..cfg.modules);
        if s == d {
            continue;
        }
        let bw =
            Bandwidth::from_mbps(rng.random_range(cfg.bandwidth_mbps.0..=cfg.bandwidth_mbps.1));
        let out = b.add_port(format!("m{s}.out{added}"), positions[s]);
        let inp = b.add_port(format!("m{d}.in{added}"), positions[d]);
        if b.add_channel(out, inp, bw).is_ok() {
            added += 1;
        }
    }
    b.build().expect("generated instance is valid")
}

/// Ports of the generated graphs are created in channel order; this
/// helper recovers the `(src, dst)` port pair of channel `i`.
pub fn channel_ports(i: usize) -> (PortId, PortId) {
    (PortId(2 * i as u32), PortId(2 * i as u32 + 1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clustered_wan_is_deterministic() {
        let cfg = ClusteredWanConfig::default();
        let a = clustered_wan(&cfg);
        let b = clustered_wan(&cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = clustered_wan(&ClusteredWanConfig::default());
        let b = clustered_wan(&ClusteredWanConfig {
            seed: 7,
            ..ClusteredWanConfig::default()
        });
        assert_ne!(a, b);
    }

    #[test]
    fn clustered_wan_shape_and_validity() {
        let cfg = ClusteredWanConfig {
            channels: 20,
            ..ClusteredWanConfig::default()
        };
        let g = clustered_wan(&cfg);
        assert_eq!(g.arc_count(), 20);
        assert_eq!(g.port_count(), 40);
        for (_, a) in g.arcs() {
            assert!(a.distance > 0.0);
            assert!(a.bandwidth.as_mbps() >= cfg.bandwidth_mbps.0);
            assert!(a.bandwidth.as_mbps() <= cfg.bandwidth_mbps.1);
        }
    }

    #[test]
    fn soc_floorplan_within_die() {
        let cfg = SocConfig::default();
        let g = soc_floorplan(&cfg);
        assert_eq!(g.arc_count(), cfg.channels);
        for (_, p) in g.ports() {
            assert!(p.position.x >= 0.0 && p.position.x <= cfg.die_mm);
            assert!(p.position.y >= 0.0 && p.position.y <= cfg.die_mm);
        }
        assert_eq!(g.norm(), Norm::Manhattan);
    }

    #[test]
    fn soc_floorplan_deterministic() {
        let cfg = SocConfig::default();
        assert_eq!(soc_floorplan(&cfg), soc_floorplan(&cfg));
    }

    #[test]
    fn channel_ports_helper_matches_layout() {
        let g = clustered_wan(&ClusteredWanConfig::default());
        for (i, (_, a)) in g.arcs().enumerate() {
            let (s, d) = channel_ports(i);
            assert_eq!(a.src, s);
            assert_eq!(a.dst, d);
        }
    }
}

//! The paper's on-chip example (Section 4, Example 2; Fig. 5).
//!
//! The original experiment segments the critical channels of a
//! proprietary multi-processor MPEG-4 decoder in 0.18 µm with
//! `l_crit = 0.6 mm`, reporting **55 repeaters**. The authors' floorplan
//! is not published, so this module provides a synthetic but structurally
//! faithful substitute (see `DESIGN.md` §3.4): the standard decoder
//! blocks placed on a ~5 × 5 mm die, with the critical dataflow channels
//! between them, calibrated so the synthesized repeater count equals the
//! paper's 55.
//!
//! Every channel runs at the full wire rate (1 Gb/s — "links have a delay
//! smaller than the clock period"), which makes merging provably
//! unprofitable (Theorem 3.2 prunes every pair), so the experiment
//! exercises exactly what the paper did: optimum segmentation with the
//! cost `⌊(|Δx| + |Δy|)/l_crit⌋`.

use ccs_core::constraint::ConstraintGraph;
use ccs_core::library::{soc_paper_library, Library};
use ccs_core::units::Bandwidth;
use ccs_geom::{Norm, Point2};

/// The critical length from the paper, in millimetres.
pub const L_CRIT_MM: f64 = 0.6;

/// The repeater count the paper reports for Fig. 5.
pub const PAPER_REPEATERS: usize = 55;

/// Decoder blocks: `(name, x mm, y mm)`.
pub const MODULES: [(&str, f64, f64); 10] = [
    ("BITS", 0.5, 3.1),  // bitstream input buffer
    ("VLD", 0.5, 0.5),   // variable-length decoder
    ("DSP0", 2.5, 0.5),  // texture DSP
    ("DSP1", 2.5, 2.5),  // shape/motion DSP
    ("IDCT", 4.5, 0.5),  // inverse DCT
    ("MC", 4.5, 2.5),    // motion compensation
    ("SDRAM", 2.5, 4.5), // memory controller
    ("DISP", 4.5, 4.5),  // display unit
    ("RISC", 0.5, 4.5),  // control processor
    ("DMA", 0.5, 2.5),   // DMA engine
];

/// Critical channels as `(source, destination)` indices into [`MODULES`].
pub const CHANNELS: [(usize, usize); 13] = [
    (1, 2), // VLD  -> DSP0   (macroblock coefficients)
    (2, 4), // DSP0 -> IDCT
    (4, 5), // IDCT -> MC
    (5, 6), // MC   -> SDRAM  (reconstructed frame)
    (6, 5), // SDRAM-> MC     (reference frame)
    (6, 7), // SDRAM-> DISP
    (3, 5), // DSP1 -> MC     (motion vectors)
    (8, 1), // RISC -> VLD    (control)
    (8, 6), // RISC -> SDRAM
    (9, 6), // DMA  -> SDRAM
    (1, 3), // VLD  -> DSP1
    (3, 2), // DSP1 -> DSP0
    (0, 1), // BITS -> VLD    (bitstream)
];

/// Builds the decoder's constraint graph (Manhattan norm, mm units, all
/// channels at the full 1 Gb/s wire rate).
///
/// # Panics
///
/// Never panics in practice — the static instance data is valid.
pub fn paper_instance() -> ConstraintGraph {
    let mut b = ConstraintGraph::builder(Norm::Manhattan);
    for (i, &(src, dst)) in CHANNELS.iter().enumerate() {
        let (sn, sx, sy) = MODULES[src];
        let (dn, dx, dy) = MODULES[dst];
        let out = b.add_port(format!("{sn}.out{i}"), Point2::new(sx, sy));
        let inp = b.add_port(format!("{dn}.in{i}"), Point2::new(dx, dy));
        b.add_channel(out, inp, Bandwidth::from_gbps(1.0))
            .expect("static MPEG-4 channel is valid");
    }
    b.build().expect("static MPEG-4 instance is valid")
}

/// The paper's on-chip library at [`L_CRIT_MM`].
pub fn paper_library() -> Library {
    soc_paper_library(L_CRIT_MM)
}

/// The paper's per-channel cost formula `⌊(|Δx| + |Δy|)/l_crit⌋` — the
/// expected repeater count of one channel.
pub fn expected_channel_repeaters(manhattan_mm: f64) -> usize {
    (manhattan_mm / L_CRIT_MM + 1e-12).floor() as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccs_core::check::verify;
    use ccs_core::synthesis::Synthesizer;

    #[test]
    fn instance_shape() {
        let g = paper_instance();
        assert_eq!(g.arc_count(), 13);
        assert_eq!(g.norm(), Norm::Manhattan);
    }

    #[test]
    fn formula_sum_is_55() {
        let g = paper_instance();
        let total: usize = g
            .arcs()
            .map(|(_, a)| expected_channel_repeaters(a.distance))
            .sum();
        assert_eq!(total, PAPER_REPEATERS);
    }

    #[test]
    fn synthesis_reproduces_55_repeaters() {
        let g = paper_instance();
        let lib = paper_library();
        let r = Synthesizer::new(&g, &lib).run().unwrap();
        assert_eq!(r.implementation.repeater_count(), PAPER_REPEATERS);
        assert!((r.total_cost() - PAPER_REPEATERS as f64).abs() < 1e-9);
        assert!(verify(&g, &lib, &r.implementation).is_empty());
    }

    #[test]
    fn full_rate_channels_prune_all_merges() {
        // Theorem 3.2: two 1 Gb/s channels cannot share a 1 Gb/s wire.
        let g = paper_instance();
        let lib = paper_library();
        let r = Synthesizer::new(&g, &lib).run().unwrap();
        assert_eq!(r.stats.merge_stats.counts, vec![]);
        assert!(r.stats.merge_stats.bandwidth_pruned > 0);
    }
}

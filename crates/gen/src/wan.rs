//! The paper's WAN example (Section 4, Example 1; Fig. 3, Tables 1–2,
//! Fig. 4).
//!
//! The paper publishes the Γ and Δ matrices but not the node coordinates.
//! Both matrices are mutually consistent and over-determined, so the
//! instance is recoverable (see `DESIGN.md` §3.1):
//!
//! * solving `Γ(aᵢ, aⱼ) = d(aᵢ) + d(aⱼ)` yields the eight arc lengths;
//! * matching Δ entries against inter-node distances identifies the arcs
//!   as `a1=(A,B), a2=(A,C), a3=(B,C), a4=(B,D), a5=(A,D), a6=(C,D),
//!   a7=(E,D), a8=(D,E)`;
//! * a planar embedding is then fixed up to congruence. The published
//!   tables are rounded to 2 decimals and slightly inconsistent around
//!   node `E`, so the embedding below reproduces every entry to within
//!   **±0.15 km** (most to ±0.01).
//!
//! Every channel requires 10 Mb/s; the library is the radio/optical pair
//! of [`ccs_core::library::wan_paper_library`].

use ccs_core::constraint::ConstraintGraph;
use ccs_core::library::{wan_paper_library, Library};
use ccs_core::units::Bandwidth;
use ccs_geom::{Norm, Point2};

/// Node coordinates (km): `A, B, C, D, E`.
pub const NODES: [(f64, f64); 5] = [
    (0.0, 0.0),          // A
    (5.0, 0.0),          // B
    (-2.79581, 4.59650), // C
    (64.8152, 76.38732), // D
    (64.82, 80.05),      // E
];

/// The arcs as `(source node, destination node)` indices into [`NODES`],
/// in the paper's order `a1..a8`.
pub const ARCS: [(usize, usize); 8] = [
    (0, 1), // a1 = (A, B)
    (0, 2), // a2 = (A, C)
    (1, 2), // a3 = (B, C)
    (1, 3), // a4 = (B, D)
    (0, 3), // a5 = (A, D)
    (2, 3), // a6 = (C, D)
    (4, 3), // a7 = (E, D)
    (3, 4), // a8 = (D, E)
];

/// Node names matching [`NODES`].
pub const NODE_NAMES: [&str; 5] = ["A", "B", "C", "D", "E"];

/// The channel bandwidth shared by all eight arcs (10 Mb/s).
pub fn channel_bandwidth() -> Bandwidth {
    Bandwidth::from_mbps(10.0)
}

/// Builds the paper's constraint graph: one dedicated port per channel
/// endpoint, all ports of a node at the node position (the approximation
/// the paper states explicitly).
///
/// # Panics
///
/// Never panics in practice — the static instance data is valid.
pub fn paper_instance() -> ConstraintGraph {
    let mut b = ConstraintGraph::builder(Norm::Euclidean);
    for (i, &(src, dst)) in ARCS.iter().enumerate() {
        let out = b.add_port(
            format!("{}.out_a{}", NODE_NAMES[src], i + 1),
            Point2::new(NODES[src].0, NODES[src].1),
        );
        let inp = b.add_port(
            format!("{}.in_a{}", NODE_NAMES[dst], i + 1),
            Point2::new(NODES[dst].0, NODES[dst].1),
        );
        b.add_channel(out, inp, channel_bandwidth())
            .expect("static WAN arc is valid");
    }
    b.build().expect("static WAN instance is valid")
}

/// The paper's WAN library (radio + optical).
pub fn paper_library() -> Library {
    wan_paper_library()
}

/// Table 1 of the paper: the Γ upper triangle, `PAPER_GAMMA[i][j - i - 1]`
/// holding `Γ(a_{i+1}, a_{j+1})` in km.
pub const PAPER_GAMMA: [&[f64]; 7] = [
    &[10.38, 14.05, 102.02, 105.18, 103.61, 8.60, 8.60],
    &[14.44, 102.40, 105.56, 104.00, 8.99, 8.99],
    &[106.07, 109.23, 107.67, 12.66, 12.66],
    &[197.20, 195.63, 100.62, 100.62],
    &[198.79, 103.78, 103.78],
    &[102.22, 102.22],
    &[7.21],
];

/// Table 2 of the paper: the Δ upper triangle, same layout as
/// [`PAPER_GAMMA`].
pub const PAPER_DELTA: [&[f64]; 7] = [
    &[9.05, 14.05, 102.02, 97.02, 102.40, 200.09, 200.17],
    &[5.0, 103.61, 98.61, 104.00, 201.69, 201.58],
    &[98.61, 103.61, 107.67, 198.61, 198.42],
    &[5.0, 9.05, 100.00, 100.63],
    &[5.38, 103.07, 103.78],
    &[101.40, 102.22],
    &[7.21],
];

/// Candidate-merging counts the paper reports in prose:
/// `(k, count)` — thirteen 2-way, twenty-one 3-way, sixteen 4-way, five
/// 5-way.
pub const PAPER_CANDIDATE_COUNTS: [(usize, usize); 4] = [(2, 13), (3, 21), (4, 16), (5, 5)];

/// Counts this reproduction measures under the default
/// `LastArcPivot` rule: k = 2..4 match the paper exactly; at k = 5 we
/// keep one extra subset (`{a1..a5}`) and at k = 6 the all-short-and-long
/// set `{a1..a6}` — neither is ever selected by the covering step, so
/// Fig. 4 is unaffected (see `EXPERIMENTS.md`).
pub const MEASURED_CANDIDATE_COUNTS: [(usize, usize); 5] =
    [(2, 13), (3, 21), (4, 16), (5, 6), (6, 1)];

/// Tolerance (km) within which the reconstructed instance reproduces
/// every published table entry.
pub const TABLE_TOLERANCE: f64 = 0.15;

/// The arcs merged in the paper's optimal architecture (Fig. 4):
/// `{a4, a5, a6}` as 0-based indices.
pub const PAPER_MERGED_ARCS: [usize; 3] = [3, 4, 5];

#[cfg(test)]
mod tests {
    use super::*;
    use ccs_core::matrices::DistanceMatrices;
    use ccs_core::merging::{enumerate, EnumerationStrategy, MergeConfig};

    #[test]
    fn instance_shape() {
        let g = paper_instance();
        assert_eq!(g.arc_count(), 8);
        assert_eq!(g.port_count(), 16);
        assert_eq!(g.norm(), Norm::Euclidean);
        for (_, a) in g.arcs() {
            assert_eq!(a.bandwidth, channel_bandwidth());
        }
    }

    #[test]
    fn arc_lengths_match_derivation() {
        let g = paper_instance();
        let expected = [5.00, 5.38, 9.05, 97.02, 100.18, 98.61, 3.605, 3.605];
        for (i, (_, a)) in g.arcs().enumerate() {
            assert!(
                (a.distance - expected[i]).abs() < 0.08,
                "a{}: {} vs {}",
                i + 1,
                a.distance,
                expected[i]
            );
        }
    }

    #[test]
    fn gamma_matches_table_1() {
        let g = paper_instance();
        let m = DistanceMatrices::compute(&g);
        let mut max_dev: f64 = 0.0;
        for (i, row) in PAPER_GAMMA.iter().enumerate() {
            for (off, &exp) in row.iter().enumerate() {
                let j = i + 1 + off;
                max_dev = max_dev.max((m.gamma(i, j) - exp).abs());
            }
        }
        assert!(max_dev < TABLE_TOLERANCE, "max Γ deviation {max_dev}");
    }

    #[test]
    fn delta_matches_table_2() {
        let g = paper_instance();
        let m = DistanceMatrices::compute(&g);
        let mut max_dev: f64 = 0.0;
        for (i, row) in PAPER_DELTA.iter().enumerate() {
            for (off, &exp) in row.iter().enumerate() {
                let j = i + 1 + off;
                max_dev = max_dev.max((m.delta(i, j) - exp).abs());
            }
        }
        assert!(max_dev < TABLE_TOLERANCE, "max Δ deviation {max_dev}");
    }

    #[test]
    fn candidate_counts_reproduce() {
        let g = paper_instance();
        let lib = paper_library();
        let m = DistanceMatrices::compute(&g);
        let cfg = MergeConfig {
            strategy: EnumerationStrategy::Exhaustive,
            ..MergeConfig::default()
        };
        let e = enumerate(&g, &lib, &m, &cfg);
        assert_eq!(
            e.stats.counts,
            MEASURED_CANDIDATE_COUNTS.to_vec(),
            "per-k candidate counts"
        );
        // The paper-prose counts match exactly for k = 2..4.
        for (paper, measured) in PAPER_CANDIDATE_COUNTS.iter().zip(&e.stats.counts).take(3) {
            assert_eq!(paper, measured);
        }
    }

    #[test]
    fn a8_is_unmergeable() {
        // "arc a8 is not mergeable with any other arc" — Section 4.
        let g = paper_instance();
        let lib = paper_library();
        let m = DistanceMatrices::compute(&g);
        let e = enumerate(&g, &lib, &m, &MergeConfig::default());
        assert!(e.all_subsets().all(|s| !s.contains(&7)));
        assert_eq!(e.stats.deactivated_at[7], Some(2));
    }

    #[test]
    fn a7_leaves_by_level_five() {
        // The paper says a7 is in no 4-way merging; under our pruning it
        // survives one 4-way set ({a4,a5,a6,a7}) and leaves at k = 5 —
        // the documented deviation.
        let g = paper_instance();
        let lib = paper_library();
        let m = DistanceMatrices::compute(&g);
        let e = enumerate(&g, &lib, &m, &MergeConfig::default());
        assert_eq!(e.stats.deactivated_at[6], Some(5));
    }
}

//! Large unate-covering instances for the parallel branch-and-bound
//! benchmarks and the CI determinism gate.
//!
//! The generator builds disjoint odd cycles: rows are the vertices of
//! `cycles` cycles of odd length `len`, and each column covers one
//! adjacent vertex pair. An odd cycle carries an LP integrality gap of
//! ½ (the fractional optimum picks every edge at ½; the integer
//! optimum needs `⌈len/2⌉` edges), so the dual-ascent lower bound
//! cannot close the root and the solver genuinely branches — one
//! root-level subtree fan-out per instance, unlike block-structured
//! matrices that reduce away without search. Column weights are
//! perturbed deterministically so the optimum is unique and every
//! tie-break is exercised identically at any thread count.

use ccs_covering::CoverMatrix;

/// Builds the disjoint-odd-cycle covering instance: `cycles * len`
/// rows and columns, column `i` of cycle `c` covering rows
/// `(c*len + i, c*len + (i+1) mod len)` at weight `1 + i_global/10⁴`.
///
/// # Panics
///
/// Panics unless `cycles >= 1` and `len` is odd and at least 3.
pub fn odd_cycles(cycles: usize, len: usize) -> CoverMatrix {
    assert!(cycles >= 1, "need at least one cycle");
    assert!(
        len >= 3 && len % 2 == 1,
        "cycle length must be odd and >= 3"
    );
    let mut m = CoverMatrix::new(cycles * len);
    let mut idx = 0usize;
    for c in 0..cycles {
        let base = c * len;
        for i in 0..len {
            m.add_column(1.0 + idx as f64 * 1e-4, [base + i, base + (i + 1) % len]);
            idx += 1;
        }
    }
    m
}

/// Like [`odd_cycles`], padded with `pad` extra singleton rows, each
/// covered by exactly one dedicated column. The padding inflates the
/// matrix past the ≥1k-column mark the `covering_par` bench case and
/// the CI determinism gate want, while leaving the search tree exactly
/// the cyclic core's: every padded row is essential, so the root
/// reduction takes all `pad` columns in one pass and the branching
/// explores odd cycles only. (Padding the *branched* rows instead —
/// e.g. with chord columns — destroys the essential cascade that keeps
/// the tree at `O(2^cycles)` and explodes the node count.)
///
/// # Panics
///
/// As [`odd_cycles`].
pub fn odd_cycles_padded(cycles: usize, len: usize, pad: usize) -> CoverMatrix {
    assert!(cycles >= 1, "need at least one cycle");
    assert!(
        len >= 3 && len % 2 == 1,
        "cycle length must be odd and >= 3"
    );
    let core = cycles * len;
    let mut m = CoverMatrix::new(core + pad);
    let mut idx = 0usize;
    for c in 0..cycles {
        let base = c * len;
        for i in 0..len {
            m.add_column(1.0 + idx as f64 * 1e-4, [base + i, base + (i + 1) % len]);
            idx += 1;
        }
    }
    for p in 0..pad {
        m.add_column(1.0 + idx as f64 * 1e-4, [core + p]);
        idx += 1;
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instance_shape_and_feasibility() {
        let m = odd_cycles(3, 7);
        assert_eq!(m.n_rows(), 21);
        assert_eq!(m.n_cols(), 21);
        // Each cycle needs ceil(7/2) = 4 edges; greedy is feasible.
        let g = m.solve_greedy().expect("feasible");
        assert!(g.columns.len() >= 12);
    }

    #[test]
    fn exact_optimum_is_ceil_half_per_cycle() {
        let m = odd_cycles(2, 5);
        let (cover, stats) = m.solve_exact_with_stats().expect("solvable");
        assert_eq!(cover.columns.len(), 6); // 2 * ceil(5/2)
        assert!(stats.proven_optimal);
        // The integrality gap forces real branching.
        assert!(stats.nodes > 1, "expected branching, got {stats:?}");
    }

    #[test]
    fn padding_leaves_the_search_tree_alone() {
        let padded = odd_cycles_padded(2, 5, 40);
        assert_eq!(padded.n_rows(), 50);
        assert_eq!(padded.n_cols(), 50);
        let (cover, stats) = padded.solve_exact_with_stats().expect("solvable");
        // All padding columns are essential plus the cyclic optimum.
        assert_eq!(cover.columns.len(), 40 + 6);
        assert!(stats.proven_optimal);
        assert!(stats.essentials >= 40);
        // The padded instance branches exactly like the bare core.
        let (_, bare) = odd_cycles(2, 5).solve_exact_with_stats().expect("solvable");
        assert_eq!(stats.subtrees, bare.subtrees);
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn even_cycle_length_panics() {
        let _ = odd_cycles(1, 4);
    }
}

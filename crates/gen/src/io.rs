//! Plain-text persistence for instances and libraries.
//!
//! A deliberately simple line-oriented format (no extra dependencies)
//! so experiments are replayable and instances can be shipped in bug
//! reports:
//!
//! ```text
//! ccs-instance v1
//! norm euclidean
//! port A.out0 0 0
//! port D.in0 64.815 76.387
//! channel 0 1 10            # src-port dst-port Mb/s
//! ```
//!
//! ```text
//! ccs-library v1
//! segmentation minimal
//! link radio 11 inf per-length 2000
//! link wire 1000 0.6 per-segment 0
//! node repeater 0
//! ```
//!
//! Port names must be whitespace-free (builders in this crate generate
//! such names); `#` starts a comment.

use ccs_core::constraint::{ConstraintGraph, PortId};
use ccs_core::library::{Library, Link, LinkCost, NodeKind, SegmentationPolicy};
use ccs_core::units::Bandwidth;
use ccs_geom::{Norm, Point2};
use std::fmt;
use std::fmt::Write as _;

/// A parse failure: the offending 1-based line and a message.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError {
        line,
        message: message.into(),
    })
}

/// Serializes a constraint graph.
///
/// # Panics
///
/// Panics if any port name contains whitespace (the generators in this
/// crate never produce such names).
pub fn instance_to_string(graph: &ConstraintGraph) -> String {
    let mut s = String::from("ccs-instance v1\n");
    let _ = writeln!(s, "norm {}", graph.norm());
    for (_, p) in graph.ports() {
        assert!(
            !p.name.chars().any(char::is_whitespace),
            "port name {:?} contains whitespace",
            p.name
        );
        let _ = writeln!(s, "port {} {} {}", p.name, p.position.x, p.position.y);
    }
    for (_, a) in graph.arcs() {
        match a.max_hops {
            Some(h) => {
                let _ = writeln!(
                    s,
                    "channel {} {} {} {h}",
                    a.src.index(),
                    a.dst.index(),
                    a.bandwidth.as_mbps()
                );
            }
            None => {
                let _ = writeln!(
                    s,
                    "channel {} {} {}",
                    a.src.index(),
                    a.dst.index(),
                    a.bandwidth.as_mbps()
                );
            }
        }
    }
    s
}

/// Parses a constraint graph saved by [`instance_to_string`].
///
/// # Errors
///
/// [`ParseError`] naming the offending line for malformed syntax, unknown
/// norms, or semantic failures (self-loops, coincident ports, …).
pub fn instance_from_str(text: &str) -> Result<ConstraintGraph, ParseError> {
    let mut lines = numbered_lines(text);
    let (n, header) = lines.next().ok_or(ParseError {
        line: 1,
        message: "empty input".into(),
    })?;
    if header != "ccs-instance v1" {
        return err(
            n,
            format!("expected header `ccs-instance v1`, got {header:?}"),
        );
    }
    let mut builder: Option<ccs_core::constraint::ConstraintGraphBuilder> = None;
    let mut ports = 0u32;
    for (n, line) in lines {
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("norm") => {
                let norm = match parts.next() {
                    Some("euclidean") => Norm::Euclidean,
                    Some("manhattan") => Norm::Manhattan,
                    Some("chebyshev") => Norm::Chebyshev,
                    other => return err(n, format!("unknown norm {other:?}")),
                };
                builder = Some(ConstraintGraph::builder(norm));
            }
            Some("port") => {
                let Some(b) = builder.as_mut() else {
                    return err(n, "`port` before `norm`");
                };
                let name = parts.next().ok_or(ParseError {
                    line: n,
                    message: "port needs a name".into(),
                })?;
                let x = parse_f64(&mut parts, n, "port x")?;
                let y = parse_f64(&mut parts, n, "port y")?;
                b.add_port(name, Point2::new(x, y));
                ports += 1;
            }
            Some("channel") => {
                let Some(b) = builder.as_mut() else {
                    return err(n, "`channel` before `norm`");
                };
                let src = parse_u32(&mut parts, n, "channel src")?;
                let dst = parse_u32(&mut parts, n, "channel dst")?;
                let mbps = parse_f64(&mut parts, n, "channel Mb/s")?;
                let max_hops = match parts.next() {
                    None => None,
                    Some(tok) => Some(tok.parse().map_err(|_| ParseError {
                        line: n,
                        message: format!("bad hop bound {tok:?}"),
                    })?),
                };
                if src >= ports || dst >= ports {
                    return err(n, format!("port index out of range (have {ports})"));
                }
                if !(mbps.is_finite() && mbps > 0.0) {
                    return err(n, format!("invalid bandwidth {mbps}"));
                }
                b.add_channel_limited(
                    PortId(src),
                    PortId(dst),
                    Bandwidth::from_mbps(mbps),
                    max_hops,
                )
                .map_err(|e| ParseError {
                    line: n,
                    message: e.to_string(),
                })?;
            }
            Some(other) => return err(n, format!("unknown directive {other:?}")),
            None => unreachable!("blank lines are filtered"),
        }
    }
    builder
        .ok_or(ParseError {
            line: 1,
            message: "missing `norm` line".into(),
        })?
        .build()
        .map_err(|e| ParseError {
            line: 1,
            message: e.to_string(),
        })
}

/// Serializes a library.
pub fn library_to_string(library: &Library) -> String {
    let mut s = String::from("ccs-library v1\n");
    let seg = match library.segmentation() {
        SegmentationPolicy::MinimalRepeaters => "minimal",
        SegmentationPolicy::RepeaterPerCriticalLength => "per-critical-length",
    };
    let _ = writeln!(s, "segmentation {seg}");
    for (_, l) in library.links() {
        let len = if l.max_length.is_infinite() {
            "inf".to_string()
        } else {
            l.max_length.to_string()
        };
        let (model, figure) = match l.cost {
            LinkCost::PerLength(r) => ("per-length", r),
            LinkCost::PerSegment(c) => ("per-segment", c),
        };
        let _ = writeln!(
            s,
            "link {} {} {} {} {}",
            l.name,
            l.bandwidth.as_mbps(),
            len,
            model,
            figure
        );
    }
    for kind in NodeKind::ALL {
        if let Some(c) = library.node_cost(kind) {
            let _ = writeln!(s, "node {kind} {c}");
        }
    }
    s
}

/// Parses a library saved by [`library_to_string`].
///
/// # Errors
///
/// [`ParseError`] naming the offending line.
pub fn library_from_str(text: &str) -> Result<Library, ParseError> {
    let mut lines = numbered_lines(text);
    let (n, header) = lines.next().ok_or(ParseError {
        line: 1,
        message: "empty input".into(),
    })?;
    if header != "ccs-library v1" {
        return err(
            n,
            format!("expected header `ccs-library v1`, got {header:?}"),
        );
    }
    let mut b = Library::builder();
    for (n, line) in lines {
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("segmentation") => {
                let policy = match parts.next() {
                    Some("minimal") => SegmentationPolicy::MinimalRepeaters,
                    Some("per-critical-length") => SegmentationPolicy::RepeaterPerCriticalLength,
                    other => return err(n, format!("unknown segmentation {other:?}")),
                };
                b = b.segmentation(policy);
            }
            Some("link") => {
                let name = parts.next().ok_or(ParseError {
                    line: n,
                    message: "link needs a name".into(),
                })?;
                let mbps = parse_f64(&mut parts, n, "link Mb/s")?;
                let len_tok = parts.next().ok_or(ParseError {
                    line: n,
                    message: "link needs a max length".into(),
                })?;
                let max_length = if len_tok == "inf" {
                    f64::INFINITY
                } else {
                    len_tok.parse().map_err(|_| ParseError {
                        line: n,
                        message: format!("bad length {len_tok:?}"),
                    })?
                };
                let model = parts.next();
                let figure = parse_f64(&mut parts, n, "link cost")?;
                let cost = match model {
                    Some("per-length") => LinkCost::PerLength(figure),
                    Some("per-segment") => LinkCost::PerSegment(figure),
                    other => return err(n, format!("unknown cost model {other:?}")),
                };
                b = b.link(Link {
                    name: name.into(),
                    bandwidth: Bandwidth::from_mbps(mbps),
                    max_length,
                    cost,
                });
            }
            Some("node") => {
                let kind = match parts.next() {
                    Some("repeater") => NodeKind::Repeater,
                    Some("mux") => NodeKind::Mux,
                    Some("demux") => NodeKind::Demux,
                    Some("switch") => NodeKind::Switch,
                    other => return err(n, format!("unknown node kind {other:?}")),
                };
                let cost = parse_f64(&mut parts, n, "node cost")?;
                b = b.node(kind, cost);
            }
            Some(other) => return err(n, format!("unknown directive {other:?}")),
            None => unreachable!("blank lines are filtered"),
        }
    }
    b.build().map_err(|e| ParseError {
        line: 1,
        message: e.to_string(),
    })
}

/// 1-based, comment-stripped, non-blank lines.
fn numbered_lines(text: &str) -> impl Iterator<Item = (usize, &str)> {
    text.lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.split('#').next().unwrap_or("").trim()))
        .filter(|(_, l)| !l.is_empty())
}

fn parse_f64<'a>(
    parts: &mut impl Iterator<Item = &'a str>,
    line: usize,
    what: &str,
) -> Result<f64, ParseError> {
    let tok = parts.next().ok_or(ParseError {
        line,
        message: format!("missing {what}"),
    })?;
    tok.parse().map_err(|_| ParseError {
        line,
        message: format!("bad {what}: {tok:?}"),
    })
}

fn parse_u32<'a>(
    parts: &mut impl Iterator<Item = &'a str>,
    line: usize,
    what: &str,
) -> Result<u32, ParseError> {
    let tok = parts.next().ok_or(ParseError {
        line,
        message: format!("missing {what}"),
    })?;
    tok.parse().map_err(|_| ParseError {
        line,
        message: format!("bad {what}: {tok:?}"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::{clustered_wan, ClusteredWanConfig};
    use crate::{mpeg4, wan};

    #[test]
    fn wan_instance_round_trips() {
        let g = wan::paper_instance();
        let text = instance_to_string(&g);
        let back = instance_from_str(&text).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn mpeg4_instance_round_trips() {
        let g = mpeg4::paper_instance();
        let back = instance_from_str(&instance_to_string(&g)).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn random_instances_round_trip() {
        for seed in [1u64, 2, 3] {
            let g = clustered_wan(&ClusteredWanConfig {
                seed,
                ..ClusteredWanConfig::default()
            });
            let back = instance_from_str(&instance_to_string(&g)).unwrap();
            assert_eq!(g, back);
        }
    }

    #[test]
    fn libraries_round_trip() {
        for lib in [wan::paper_library(), mpeg4::paper_library()] {
            let text = library_to_string(&lib);
            let back = library_from_str(&text).unwrap();
            assert_eq!(lib, back);
        }
    }

    #[test]
    fn hop_bounds_round_trip() {
        use ccs_core::constraint::ConstraintGraph;
        use ccs_core::units::Bandwidth;
        use ccs_geom::{Norm, Point2};
        let mut b = ConstraintGraph::builder(Norm::Euclidean);
        let s = b.add_port("s", Point2::new(0.0, 0.0));
        let t = b.add_port("t", Point2::new(9.0, 0.0));
        b.add_channel_limited(s, t, Bandwidth::from_mbps(5.0), Some(2))
            .unwrap();
        b.add_channel(t, s, Bandwidth::from_mbps(5.0)).unwrap();
        let g = b.build().unwrap();
        let text = instance_to_string(&g);
        assert!(text.contains("channel 0 1 5 2"));
        let back = instance_from_str(&text).unwrap();
        assert_eq!(g, back);
        // Bad bound is reported with its line.
        let bad = text.replace("channel 0 1 5 2", "channel 0 1 5 x");
        let e = instance_from_str(&bad).unwrap_err();
        assert!(e.message.contains("hop bound"));
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "ccs-instance v1\n# a comment\n\nnorm euclidean\nport a 0 0\nport b 1 0  # inline\nchannel 0 1 5\n";
        let g = instance_from_str(text).unwrap();
        assert_eq!(g.arc_count(), 1);
        assert_eq!(g.port_count(), 2);
    }

    #[test]
    fn bad_header_rejected() {
        let e = instance_from_str("nope\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("header"));
    }

    #[test]
    fn unknown_directive_line_is_reported() {
        let e = instance_from_str("ccs-instance v1\nnorm euclidean\nbogus 1 2\n").unwrap_err();
        assert_eq!(e.line, 3);
    }

    #[test]
    fn semantic_errors_carry_line() {
        // Self-loop channel.
        let e = instance_from_str("ccs-instance v1\nnorm euclidean\nport a 0 0\nchannel 0 0 5\n")
            .unwrap_err();
        assert_eq!(e.line, 4);
        assert!(e.message.contains("itself"));
        // Out-of-range port.
        let e = instance_from_str("ccs-instance v1\nnorm euclidean\nport a 0 0\nchannel 0 9 5\n")
            .unwrap_err();
        assert!(e.message.contains("out of range"));
    }

    #[test]
    fn bad_numbers_are_reported() {
        let e = instance_from_str("ccs-instance v1\nnorm euclidean\nport a x 0\n").unwrap_err();
        assert!(e.message.contains("port x"));
        let e = library_from_str("ccs-library v1\nlink l abc inf per-length 1\n").unwrap_err();
        assert!(e.message.contains("Mb/s"));
    }

    #[test]
    fn display_formats_line() {
        let e = ParseError {
            line: 7,
            message: "boom".into(),
        };
        assert_eq!(e.to_string(), "line 7: boom");
    }

    #[test]
    fn loaded_instance_synthesizes_identically() {
        let g = wan::paper_instance();
        let lib = wan::paper_library();
        let loaded_g = instance_from_str(&instance_to_string(&g)).unwrap();
        let loaded_lib = library_from_str(&library_to_string(&lib)).unwrap();
        let a = ccs_core::synthesis::Synthesizer::new(&g, &lib)
            .run()
            .unwrap();
        let b = ccs_core::synthesis::Synthesizer::new(&loaded_g, &loaded_lib)
            .run()
            .unwrap();
        assert_eq!(a.total_cost(), b.total_cost());
    }
}

//! Independent verification of an implementation graph against its
//! constraint graph (the conditions of Def. 2.4).
//!
//! [`verify`] trusts nothing the synthesizer computed except the graph
//! structure itself: it re-walks every recorded route, re-measures every
//! edge, re-derives lane-group capacities and re-checks them against the
//! constraint bandwidths. An empty violation list certifies the
//! architecture.

use crate::constraint::{ArcId, ConstraintGraph};
use crate::implementation::{EdgeKind, ImplEdge, ImplementationGraph};
use crate::library::Library;
use crate::units::Bandwidth;
use std::collections::HashMap;
use std::fmt;

/// Relative tolerance for geometric comparisons.
const TOL: f64 = 1e-6;

/// A verification failure.
#[derive(Debug, Clone, PartialEq)]
pub enum Violation {
    /// No route was recorded for a constraint arc.
    MissingRoute(ArcId),
    /// A route does not start at `χ(u)` or end at `χ(v)`.
    WrongEndpoints(ArcId),
    /// A route passes through another computational vertex (Def. 2.4
    /// item 1 forbids it).
    ThroughComputational(ArcId),
    /// Two consecutive route vertices are not connected by an edge.
    BrokenRoute(ArcId),
    /// A lane group's aggregate capacity is below its demand.
    InsufficientBandwidth {
        /// The lane group.
        group: u32,
        /// Aggregate demand routed over the group.
        demand: Bandwidth,
        /// Aggregate capacity (lanes × link bandwidth).
        capacity: Bandwidth,
    },
    /// An edge is longer than its link's maximum span.
    LinkTooLong {
        /// Lane group of the offending edge.
        group: u32,
        /// Edge length.
        length: f64,
        /// The link's maximum.
        max: f64,
    },
    /// An edge's recorded length disagrees with its endpoint positions.
    LengthMismatch {
        /// Lane group of the offending edge.
        group: u32,
        /// Recorded length.
        recorded: f64,
        /// Geometric distance between the endpoints.
        measured: f64,
    },
    /// A communication node's connectivity contradicts its kind (e.g. a
    /// repeater with fan-out, a mux merging a single stream).
    BadNodeDegree {
        /// The node kind.
        kind: crate::library::NodeKind,
        /// Incoming edges (links and attachments).
        ins: usize,
        /// Outgoing edges.
        outs: usize,
    },
    /// A route uses more link hops than the channel's bound allows.
    TooManyHops {
        /// The constrained arc.
        arc: ArcId,
        /// Link hops along the implemented route.
        hops: u32,
        /// The channel's bound.
        max: u32,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::MissingRoute(a) => write!(f, "arc {a} has no route"),
            Violation::WrongEndpoints(a) => write!(f, "route of arc {a} has wrong endpoints"),
            Violation::ThroughComputational(a) => {
                write!(f, "route of arc {a} passes through a computational vertex")
            }
            Violation::BrokenRoute(a) => write!(f, "route of arc {a} is disconnected"),
            Violation::InsufficientBandwidth {
                group,
                demand,
                capacity,
            } => write!(
                f,
                "lane group {group}: demand {demand} exceeds capacity {capacity}"
            ),
            Violation::LinkTooLong { group, length, max } => {
                write!(
                    f,
                    "lane group {group}: edge length {length} exceeds link max {max}"
                )
            }
            Violation::LengthMismatch {
                group,
                recorded,
                measured,
            } => write!(
                f,
                "lane group {group}: recorded length {recorded} but endpoints are {measured} apart"
            ),
            Violation::BadNodeDegree { kind, ins, outs } => {
                write!(f, "{kind} node with in-degree {ins}, out-degree {outs}")
            }
            Violation::TooManyHops { arc, hops, max } => {
                write!(f, "arc {arc}: route uses {hops} hops, bound is {max}")
            }
        }
    }
}

/// Verifies `imp` against `graph` and `library`; returns all violations
/// found (empty = the architecture satisfies every constraint).
pub fn verify(
    graph: &ConstraintGraph,
    library: &Library,
    imp: &ImplementationGraph,
) -> Vec<Violation> {
    let mut out = Vec::new();
    verify_routes(graph, imp, &mut out);
    verify_capacities(graph, imp, &mut out);
    verify_geometry(library, imp, &mut out);
    verify_node_degrees(imp, &mut out);
    out
}

/// Structural sanity of communication nodes: a repeater relays exactly
/// one stream, a mux merges at least two, a demux splits into at least
/// two, a switch does at least one of the two.
fn verify_node_degrees(imp: &ImplementationGraph, out: &mut Vec<Violation>) {
    use crate::implementation::ImplVertex;
    use crate::library::NodeKind;
    for (id, v) in imp.graph().nodes() {
        let ImplVertex::Communication { kind, .. } = v else {
            continue;
        };
        let ins = imp.graph().in_degree(id);
        let outs = imp.graph().out_degree(id);
        let ok = match kind {
            NodeKind::Repeater => ins == 1 && outs == 1,
            NodeKind::Mux => ins >= 2 && outs >= 1,
            NodeKind::Demux => ins >= 1 && outs >= 2,
            NodeKind::Switch => ins >= 1 && outs >= 1,
        };
        if !ok {
            out.push(Violation::BadNodeDegree {
                kind: *kind,
                ins,
                outs,
            });
        }
    }
}

fn verify_routes(graph: &ConstraintGraph, imp: &ImplementationGraph, out: &mut Vec<Violation>) {
    for (aid, arc) in graph.arcs() {
        let route = imp.route(aid);
        if route.len() < 2 {
            out.push(Violation::MissingRoute(aid));
            continue;
        }
        let src_v = imp.port_vertex(arc.src);
        let dst_v = imp.port_vertex(arc.dst);
        if route[0] != src_v || *route.last().expect("non-empty") != dst_v {
            out.push(Violation::WrongEndpoints(aid));
        }
        if route[1..route.len() - 1]
            .iter()
            .any(|&v| imp.graph().node(v).is_computational())
        {
            out.push(Violation::ThroughComputational(aid));
        }
        let mut hops = 0u32;
        for w in route.windows(2) {
            let edge = imp.graph().out_edges(w[0]).find(|(_, e)| e.dst == w[1]);
            match edge {
                None => {
                    out.push(Violation::BrokenRoute(aid));
                    break;
                }
                Some((_, e)) => {
                    if matches!(e.data.kind, crate::implementation::EdgeKind::Link(_)) {
                        hops += 1;
                    }
                }
            }
        }
        if let Some(max) = arc.max_hops {
            if hops > max {
                out.push(Violation::TooManyHops {
                    arc: aid,
                    hops,
                    max,
                });
            }
        }
    }
}

fn verify_capacities(graph: &ConstraintGraph, imp: &ImplementationGraph, out: &mut Vec<Violation>) {
    // Group edges by lane group; each group carries the same arc set over
    // `lanes` parallel chains of identical capacity.
    let mut groups: HashMap<u32, (&ImplEdge, Vec<usize>)> = HashMap::new();
    for (_, e) in imp.graph().edges() {
        if matches!(e.data.kind, EdgeKind::Link(_)) {
            groups
                .entry(e.data.lane_group)
                .or_insert_with(|| (&e.data, e.data.arcs.clone()));
        }
    }
    for (&g, &(edge, ref arcs)) in &groups {
        let demand: Bandwidth = arcs
            .iter()
            .map(|&i| graph.arc(ArcId(i as u32)).bandwidth)
            .sum();
        let capacity = edge.capacity * edge.lanes as f64;
        if demand.as_mbps() > capacity.as_mbps() * (1.0 + TOL) {
            out.push(Violation::InsufficientBandwidth {
                group: g,
                demand,
                capacity,
            });
        }
    }
}

fn verify_geometry(library: &Library, imp: &ImplementationGraph, out: &mut Vec<Violation>) {
    let norm = imp.norm();
    let mut reported: std::collections::HashSet<u32> = std::collections::HashSet::new();
    for (_, e) in imp.graph().edges() {
        let EdgeKind::Link(link_id) = e.data.kind else {
            continue;
        };
        let g = e.data.lane_group;
        let link = library.link(link_id);
        if e.data.length > link.max_length * (1.0 + TOL) && reported.insert(g) {
            out.push(Violation::LinkTooLong {
                group: g,
                length: e.data.length,
                max: link.max_length,
            });
        }
        let from = imp.graph().node(e.src).position();
        let to = imp.graph().node(e.dst).position();
        let measured = norm.distance(from, to);
        if (measured - e.data.length).abs() > TOL * (1.0 + e.data.length) && reported.insert(g) {
            out.push(Violation::LengthMismatch {
                group: g,
                recorded: e.data.length,
                measured,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::ConstraintGraph;
    use crate::library::wan_paper_library;
    use crate::placement::{merge_candidate, point_to_point_candidate};
    use ccs_geom::{Norm, Point2};

    fn mbps(x: f64) -> Bandwidth {
        Bandwidth::from_mbps(x)
    }

    fn graph_and_lib() -> (ConstraintGraph, Library) {
        let mut b = ConstraintGraph::builder(Norm::Euclidean);
        let s0 = b.add_port("A", Point2::new(0.0, 0.0));
        let s1 = b.add_port("B", Point2::new(5.0, 0.0));
        let d = b.add_port("D", Point2::new(64.8, 76.4));
        b.add_channel(s0, d, mbps(10.0)).unwrap();
        b.add_channel(s1, d, mbps(10.0)).unwrap();
        (b.build().unwrap(), wan_paper_library())
    }

    #[test]
    fn valid_p2p_architecture_passes() {
        let (g, lib) = graph_and_lib();
        let cands = vec![
            point_to_point_candidate(&g, &lib, 0).unwrap(),
            point_to_point_candidate(&g, &lib, 1).unwrap(),
        ];
        let imp = ImplementationGraph::build(&g, &lib, &cands);
        assert_eq!(verify(&g, &lib, &imp), Vec::new());
    }

    #[test]
    fn valid_merged_architecture_passes() {
        let (g, lib) = graph_and_lib();
        let cand = merge_candidate(&g, &lib, &[0, 1]).unwrap().unwrap();
        let imp = ImplementationGraph::build(&g, &lib, &[cand]);
        assert_eq!(verify(&g, &lib, &imp), Vec::new());
    }

    #[test]
    fn missing_arc_detected() {
        let (g, lib) = graph_and_lib();
        // Implement only arc 0; arc 1 has no route.
        let cands = vec![point_to_point_candidate(&g, &lib, 0).unwrap()];
        let imp = ImplementationGraph::build(&g, &lib, &cands);
        let v = verify(&g, &lib, &imp);
        assert!(v.contains(&Violation::MissingRoute(ArcId(1))));
    }

    #[test]
    fn overloaded_trunk_detected() {
        // Force an undersized trunk by lying about the demand: implement
        // both arcs with a *pair* merge but raise one arc's bandwidth in
        // a second constraint graph used for verification.
        let (g, lib) = graph_and_lib();
        let cand = merge_candidate(&g, &lib, &[0, 1]).unwrap().unwrap();
        let imp = ImplementationGraph::build(&g, &lib, &[cand]);

        let mut b = ConstraintGraph::builder(Norm::Euclidean);
        let s0 = b.add_port("A", Point2::new(0.0, 0.0));
        let s1 = b.add_port("B", Point2::new(5.0, 0.0));
        let d = b.add_port("D", Point2::new(64.8, 76.4));
        b.add_channel(s0, d, mbps(10.0)).unwrap();
        // 2 Gb/s demand exceeds even the optical trunk.
        b.add_channel(s1, d, Bandwidth::from_gbps(2.0)).unwrap();
        let g_hot = b.build().unwrap();
        let v = verify(&g_hot, &lib, &imp);
        assert!(
            v.iter()
                .any(|x| matches!(x, Violation::InsufficientBandwidth { .. })),
            "got {v:?}"
        );
    }

    #[test]
    fn degenerate_single_stream_mux_detected() {
        // Hand-build a pathological "merging" of one arc: the mux ends up
        // relaying a single stream, which the degree check must flag.
        let (g, lib) = graph_and_lib();
        let mut cand = crate::placement::merge_candidate(&g, &lib, &[0, 1])
            .unwrap()
            .unwrap();
        cand.arcs = vec![0];
        cand.segments
            .retain(|s| s.arcs == vec![0] || s.arcs.len() > 1);
        let imp = ImplementationGraph::build(&g, &lib, std::slice::from_ref(&cand));
        let v = verify(&g, &lib, &imp);
        assert!(
            v.iter()
                .any(|x| matches!(x, Violation::BadNodeDegree { .. })),
            "got {v:?}"
        );
    }

    #[test]
    fn hop_bound_violation_detected_post_hoc() {
        // Synthesize on an on-chip instance (segmentation → many hops),
        // then re-verify against a constraint set demanding 1 hop.
        let lib = crate::library::soc_paper_library(0.6);
        let mut b = ConstraintGraph::builder(ccs_geom::Norm::Manhattan);
        let s = b.add_port("s", Point2::new(0.0, 0.0));
        let t = b.add_port("t", Point2::new(2.0, 0.0));
        b.add_channel(s, t, mbps(100.0)).unwrap();
        let g = b.build().unwrap();
        let imp = crate::synthesis::Synthesizer::new(&g, &lib)
            .run()
            .unwrap()
            .implementation;
        assert!(verify(&g, &lib, &imp).is_empty());

        let mut b2 = ConstraintGraph::builder(ccs_geom::Norm::Manhattan);
        let s2 = b2.add_port("s", Point2::new(0.0, 0.0));
        let t2 = b2.add_port("t", Point2::new(2.0, 0.0));
        b2.add_channel_limited(s2, t2, mbps(100.0), Some(1))
            .unwrap();
        let tight = b2.build().unwrap();
        let v = verify(&tight, &lib, &imp);
        assert!(
            v.iter().any(|x| matches!(x, Violation::TooManyHops { .. })),
            "got {v:?}"
        );
    }

    #[test]
    fn violation_display_nonempty() {
        let v = Violation::InsufficientBandwidth {
            group: 3,
            demand: mbps(30.0),
            capacity: mbps(11.0),
        };
        assert!(v.to_string().contains("lane group 3"));
        assert!(!Violation::MissingRoute(ArcId(0)).to_string().is_empty());
    }
}

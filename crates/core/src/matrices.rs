//! The Γ and Δ matrices driving merge pruning (paper Section 3,
//! Tables 1–2).
//!
//! For arcs `aᵢ = (uᵢ, vᵢ)` and `aⱼ = (uⱼ, vⱼ)`:
//!
//! * the **Constrained Distance Sum Matrix**
//!   `Γ(aᵢ, aⱼ) = d(aᵢ) + d(aⱼ)` — the wirelength both arcs pay when
//!   implemented point-to-point;
//! * the **Merging Distance Sum Matrix**
//!   `Δ(aᵢ, aⱼ) = ‖p(uᵢ) − p(uⱼ)‖ + ‖p(vᵢ) − p(vⱼ)‖` — the detour a
//!   shared trunk must amortize.
//!
//! Lemma 3.1 prunes a pair whenever `Γ ≤ Δ`; the slack `ε = Γ − Δ` is the
//! quantity summed in Lemma 3.2's k-way condition.

use crate::constraint::ConstraintGraph;
use std::fmt::Write as _;

/// Both distance-sum matrices of a constraint graph, with the merge slack
/// `ε = Γ − Δ` precomputed.
///
/// # Examples
///
/// ```
/// use ccs_core::constraint::ConstraintGraph;
/// use ccs_core::matrices::DistanceMatrices;
/// use ccs_core::units::Bandwidth;
/// use ccs_geom::{Norm, Point2};
///
/// let mut b = ConstraintGraph::builder(Norm::Euclidean);
/// let a = b.add_port("A", Point2::new(0.0, 0.0));
/// let v = b.add_port("B", Point2::new(10.0, 0.0));
/// let c = b.add_port("C", Point2::new(0.0, 1.0));
/// let d = b.add_port("D", Point2::new(10.0, 1.0));
/// b.add_channel(a, v, Bandwidth::from_mbps(1.0))?;
/// b.add_channel(c, d, Bandwidth::from_mbps(1.0))?;
/// let g = b.build()?;
/// let m = DistanceMatrices::compute(&g);
/// assert_eq!(m.gamma(0, 1), 20.0);
/// assert_eq!(m.delta(0, 1), 2.0);
/// assert_eq!(m.slack(0, 1), 18.0); // strongly mergeable pair
/// # Ok::<(), ccs_core::error::BuildError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DistanceMatrices {
    n: usize,
    gamma: Vec<f64>,
    delta: Vec<f64>,
}

impl DistanceMatrices {
    /// Computes Γ and Δ for every arc pair of `graph` under the graph's
    /// norm.
    pub fn compute(graph: &ConstraintGraph) -> Self {
        let n = graph.arc_count();
        let norm = graph.norm();
        let mut gamma = vec![0.0; n * n];
        let mut delta = vec![0.0; n * n];
        let arcs: Vec<_> = graph.arcs().collect();
        for i in 0..n {
            let (ui, vi) = graph.arc_endpoints(arcs[i].0);
            for j in 0..n {
                let (uj, vj) = graph.arc_endpoints(arcs[j].0);
                gamma[i * n + j] = arcs[i].1.distance + arcs[j].1.distance;
                delta[i * n + j] = norm.distance(ui, uj) + norm.distance(vi, vj);
            }
        }
        ccs_obs::counter("matrices.pairs", (n * n) as u64);
        DistanceMatrices { n, gamma, delta }
    }

    /// Number of arcs (matrix dimension).
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` when the constraint graph had no arcs.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// `Γ(aᵢ, aⱼ)`.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn gamma(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.n && j < self.n, "index out of range");
        self.gamma[i * self.n + j]
    }

    /// `Δ(aᵢ, aⱼ)`.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn delta(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.n && j < self.n, "index out of range");
        self.delta[i * self.n + j]
    }

    /// The merge slack `ε(aᵢ, aⱼ) = Γ(aᵢ, aⱼ) − Δ(aᵢ, aⱼ)`.
    ///
    /// Positive slack means a shared trunk could save wirelength; Lemma
    /// 3.1 prunes pairs with `ε ≤ 0`.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn slack(&self, i: usize, j: usize) -> f64 {
        self.gamma(i, j) - self.delta(i, j)
    }

    /// Renders the upper triangle in the paper's table layout.
    pub fn format_upper(&self, which: Matrix) -> String {
        let m = match which {
            Matrix::Gamma => &self.gamma,
            Matrix::Delta => &self.delta,
        };
        let mut s = String::new();
        let _ = write!(s, "{:>6}", "");
        for j in 0..self.n {
            let _ = write!(s, "{:>9}", format!("a{}", j + 1));
        }
        s.push('\n');
        for i in 0..self.n {
            let _ = write!(s, "{:>6}", format!("a{}", i + 1));
            for j in 0..self.n {
                if j > i {
                    let _ = write!(s, "{:>9.2}", m[i * self.n + j]);
                } else {
                    let _ = write!(s, "{:>9}", "");
                }
            }
            s.push('\n');
        }
        s
    }
}

/// Selector for [`DistanceMatrices::format_upper`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Matrix {
    /// The constrained distance sum matrix (Table 1).
    Gamma,
    /// The merging distance sum matrix (Table 2).
    Delta,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::Bandwidth;
    use ccs_geom::{Norm, Point2};

    fn two_parallel_arcs() -> ConstraintGraph {
        let mut b = ConstraintGraph::builder(Norm::Euclidean);
        let a = b.add_port("A", Point2::new(0.0, 0.0));
        let v = b.add_port("B", Point2::new(10.0, 0.0));
        let c = b.add_port("C", Point2::new(0.0, 2.0));
        let d = b.add_port("D", Point2::new(10.0, 2.0));
        b.add_channel(a, v, Bandwidth::from_mbps(1.0)).unwrap();
        b.add_channel(c, d, Bandwidth::from_mbps(1.0)).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn gamma_is_sum_of_lengths() {
        let g = two_parallel_arcs();
        let m = DistanceMatrices::compute(&g);
        assert_eq!(m.len(), 2);
        assert_eq!(m.gamma(0, 0), 20.0);
        assert_eq!(m.gamma(0, 1), 20.0);
        assert_eq!(m.gamma(1, 1), 20.0);
    }

    #[test]
    fn delta_is_endpoint_distance_sum() {
        let g = two_parallel_arcs();
        let m = DistanceMatrices::compute(&g);
        assert_eq!(m.delta(0, 1), 4.0);
        assert_eq!(m.delta(0, 0), 0.0);
    }

    #[test]
    fn matrices_are_symmetric() {
        let g = two_parallel_arcs();
        let m = DistanceMatrices::compute(&g);
        for i in 0..2 {
            for j in 0..2 {
                assert_eq!(m.gamma(i, j), m.gamma(j, i));
                assert_eq!(m.delta(i, j), m.delta(j, i));
            }
        }
    }

    #[test]
    fn slack_matches_definition() {
        let g = two_parallel_arcs();
        let m = DistanceMatrices::compute(&g);
        assert_eq!(m.slack(0, 1), 16.0);
    }

    #[test]
    fn opposite_arcs_have_zero_slack_under_symmetry() {
        // a = (u, v), a' = (v, u): Δ = 2‖u − v‖ = Γ, so ε = 0 — exactly
        // the paper's a7/a8 pattern (never mergeable).
        let mut b = ConstraintGraph::builder(Norm::Euclidean);
        let u = b.add_port("D", Point2::new(0.0, 0.0));
        let v = b.add_port("E", Point2::new(3.6, 0.0));
        b.add_channel(u, v, Bandwidth::from_mbps(1.0)).unwrap();
        b.add_channel(v, u, Bandwidth::from_mbps(1.0)).unwrap();
        let g = b.build().unwrap();
        let m = DistanceMatrices::compute(&g);
        assert!((m.slack(0, 1)).abs() < 1e-12);
    }

    #[test]
    fn format_upper_shows_triangle_only() {
        let g = two_parallel_arcs();
        let m = DistanceMatrices::compute(&g);
        let s = m.format_upper(Matrix::Gamma);
        assert!(s.contains("a1"));
        assert!(s.contains("20.00"));
        // Exactly one numeric cell for a 2×2 upper triangle.
        assert_eq!(s.matches("20.00").count(), 1);
        let s = m.format_upper(Matrix::Delta);
        assert!(s.contains("4.00"));
    }

    #[test]
    fn empty_graph_produces_empty_matrices() {
        let g = ConstraintGraph::builder(Norm::Euclidean).build().unwrap();
        let m = DistanceMatrices::compute(&g);
        assert!(m.is_empty());
        assert_eq!(m.format_upper(Matrix::Gamma).lines().count(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let g = two_parallel_arcs();
        let m = DistanceMatrices::compute(&g);
        let _ = m.gamma(0, 5);
    }
}

//! Constraint-driven communication synthesis — a from-scratch
//! reproduction of Pinto, Carloni, Sangiovanni-Vincentelli,
//! *Constraint-Driven Communication Synthesis*, **DAC 2002**.
//!
//! Given a [`ConstraintGraph`](constraint::ConstraintGraph) — ports with
//! positions and point-to-point channels annotated with distance and
//! bandwidth requirements (Def. 2.1) — and a communication
//! [`Library`](library::Library) of links, repeaters and mux/demux
//! switches (Def. 2.2), the [`Synthesizer`](synthesis::Synthesizer)
//! produces a minimum-cost
//! [`ImplementationGraph`](implementation::ImplementationGraph)
//! (Def. 2.4/2.5) using the paper's two-phase algorithm:
//!
//! 1. **Local candidate generation** ([`p2p`], [`merging`],
//!    [`placement`]) — the optimum point-to-point implementation of every
//!    arc (matching / segmentation / duplication, Def. 2.7) plus all
//!    non-dominated k-way merge candidates, pruned with Lemma 3.1/3.2 and
//!    Theorems 3.1/3.2 over the Γ/Δ matrices ([`matrices`]); each
//!    surviving candidate's topology and cost come from an exact hub
//!    placement (Weber problems over the chosen norm).
//! 2. **Global selection** ([`cover`]) — a weighted unate covering problem
//!    over the candidates, solved exactly by `ccs-covering`.
//!
//! The [`check`] module re-validates any implementation graph against its
//! constraint graph *independently* of the synthesizer.
//!
//! # Quickstart
//!
//! ```
//! use ccs_core::prelude::*;
//!
//! // Two modules 12 km apart exchanging 8 Mb/s.
//! let mut b = ConstraintGraph::builder(Norm::Euclidean);
//! let tx = b.add_port("tx", Point2::new(0.0, 0.0));
//! let rx = b.add_port("rx", Point2::new(12.0, 0.0));
//! b.add_channel(tx, rx, Bandwidth::from_mbps(8.0))?;
//! let graph = b.build()?;
//!
//! let library = Library::builder()
//!     .link(Link::per_length("radio", Bandwidth::from_mbps(11.0), 2_000.0))
//!     .node(NodeKind::Repeater, 0.0)
//!     .node(NodeKind::Mux, 0.0)
//!     .node(NodeKind::Demux, 0.0)
//!     .build()?;
//!
//! let result = Synthesizer::new(&graph, &library).run()?;
//! assert_eq!(result.implementation.link_count(), 1); // a single radio link
//! assert!(ccs_core::check::verify(&graph, &library, &result.implementation).is_empty());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bits;
pub mod check;
pub mod constraint;
pub mod cover;
pub mod error;
pub mod implementation;
pub mod library;
pub mod matrices;
pub mod merging;
pub mod model;
pub mod p2p;
pub mod placement;
pub mod report;
pub mod synthesis;
pub mod technology;
pub mod units;

/// The most commonly used items, re-exported for glob import.
pub mod prelude {
    pub use crate::constraint::{ArcId, ConstraintGraph, ConstraintGraphBuilder, PortId};
    pub use crate::error::SynthesisError;
    pub use crate::implementation::ImplementationGraph;
    pub use crate::library::{Library, LibraryBuilder, Link, LinkCost, NodeKind};
    pub use crate::synthesis::{
        Edit, SynthesisConfig, SynthesisResult, SynthesisSession, Synthesizer,
    };
    pub use crate::units::Bandwidth;
    pub use ccs_geom::{Norm, Point2};
}

//! Bit-packed adjacency rows and triangular pair indexing for the
//! merge-enumeration kernel.
//!
//! Level-2 enumeration sweeps all `n(n−1)/2` unordered arc pairs; the
//! sweep is chunked over a [`ccs_exec::Executor`], and each chunk
//! derives its pair range *arithmetically* from the triangular index
//! ([`pair_at`]/[`pair_index`]) instead of materializing a
//! `Vec<(usize, usize)>` of every pair.
//!
//! Levels `k ≥ 3` grow cliques in the surviving-pair graph. The graph
//! is stored as one word-packed neighbor row per arc
//! ([`NeighborMasks`], rows are [`ccs_covering::bitset::BitSet`]s), so
//! extending a (k−1)-clique is an AND of its members' rows masked to
//! indices greater than the clique's last member — each candidate
//! extension then pops out via `trailing_zeros` iteration rather than
//! an `O(k)` scalar `adj[i][j]` scan per arc.

use ccs_covering::bitset::BitSet;

/// Number of unordered pairs over `n` items: `n(n−1)/2`.
pub fn pair_count(n: usize) -> usize {
    n * n.saturating_sub(1) / 2
}

/// First triangular index of row `i` (pairs `(i, i+1) .. (i, n−1)`).
#[inline]
fn row_start(n: usize, i: usize) -> usize {
    // i and (2n − i − 1) have opposite parity, so the product is even
    // and the division is exact.
    i * (2 * n - i - 1) / 2
}

/// Lexicographic rank of the pair `(i, j)` among all unordered pairs of
/// `0..n`.
///
/// # Panics
///
/// Panics (debug) unless `i < j < n`.
#[inline]
pub fn pair_index(n: usize, i: usize, j: usize) -> usize {
    debug_assert!(i < j && j < n, "need i < j < n, got ({i}, {j}) of {n}");
    row_start(n, i) + (j - i - 1)
}

/// Inverse of [`pair_index`]: the pair of rank `idx`.
///
/// The float guess lands within one row of the answer; the integer
/// fix-up makes the result exact (and thus independent of rounding
/// mode), which the determinism gate relies on.
///
/// # Panics
///
/// Panics if `idx >= pair_count(n)`.
#[inline]
pub fn pair_at(n: usize, idx: usize) -> (usize, usize) {
    assert!(
        idx < pair_count(n),
        "pair index {idx} out of range {}",
        pair_count(n)
    );
    let nf = n as f64 - 0.5;
    let guess = (nf - (nf * nf - 2.0 * idx as f64).max(0.0).sqrt()) as usize;
    let mut i = guess.min(n - 2);
    while row_start(n, i) > idx {
        i -= 1;
    }
    while i < n - 2 && row_start(n, i + 1) <= idx {
        i += 1;
    }
    (i, i + 1 + (idx - row_start(n, i)))
}

/// The surviving-pair graph as word-packed neighbor rows.
#[derive(Debug, Clone)]
pub struct NeighborMasks {
    rows: Vec<BitSet>,
    n: usize,
}

impl NeighborMasks {
    /// An edgeless graph over `n` arcs.
    pub fn new(n: usize) -> Self {
        NeighborMasks {
            rows: (0..n).map(|_| BitSet::new(n)).collect(),
            n,
        }
    }

    /// Universe size.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` when the universe is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Records the undirected surviving pair `{i, j}`.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of range.
    pub fn connect(&mut self, i: usize, j: usize) {
        self.rows[i].insert(j);
        self.rows[j].insert(i);
    }

    /// Whether `{i, j}` is a surviving pair.
    pub fn connected(&self, i: usize, j: usize) -> bool {
        self.rows[i].contains(j)
    }

    /// A scratch set sized for [`extension_mask`](Self::extension_mask).
    pub fn scratch(&self) -> BitSet {
        BitSet::new(self.n)
    }

    /// Computes into `out` the set of arcs that extend the clique `sub`:
    /// adjacent to every member, contained in `mask` (the active set),
    /// and strictly greater than the clique's last member. `out` is
    /// overwritten, so one scratch set serves a whole sweep chunk.
    ///
    /// # Panics
    ///
    /// Panics if `sub` is empty or `out`/`mask` have the wrong capacity.
    pub fn extension_mask(&self, sub: &[u32], mask: &BitSet, out: &mut BitSet) {
        let last = *sub.last().expect("non-empty clique") as usize;
        // Fused multi-way AND: one pass over the words instead of a
        // copy plus one intersect sweep per clique member. The operand
        // list lives on the stack — merge cliques are small, and this
        // runs once per sweep node.
        const STACK: usize = 8;
        if sub.len() < STACK {
            let mut sets: [&BitSet; STACK] = [mask; STACK];
            for (i, &m) in sub.iter().enumerate() {
                sets[i] = &self.rows[m as usize];
            }
            out.assign_intersection(&sets[..=sub.len()]);
        } else {
            out.copy_from(&self.rows[sub[0] as usize]);
            for &m in &sub[1..] {
                out.intersect(&self.rows[m as usize]);
            }
            out.intersect(mask);
        }
        out.clear_below(last + 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccs_exec::chunk_ranges;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    #[test]
    fn pair_count_small_cases() {
        assert_eq!(pair_count(0), 0);
        assert_eq!(pair_count(1), 0);
        assert_eq!(pair_count(2), 1);
        assert_eq!(pair_count(3), 3);
        assert_eq!(pair_count(12), 66);
    }

    #[test]
    fn pair_index_round_trips_every_pair() {
        for n in [2usize, 3, 4, 5, 17, 63, 64, 65, 130] {
            let mut rank = 0usize;
            for i in 0..n {
                for j in (i + 1)..n {
                    assert_eq!(pair_index(n, i, j), rank, "rank of ({i},{j}) in n={n}");
                    assert_eq!(pair_at(n, rank), (i, j), "unrank {rank} in n={n}");
                    rank += 1;
                }
            }
            assert_eq!(rank, pair_count(n));
        }
    }

    #[test]
    fn pair_at_first_and_last() {
        // n = 2: the single pair.
        assert_eq!(pair_at(2, 0), (0, 1));
        // n = 3: all three, in lexicographic order.
        assert_eq!(pair_at(3, 0), (0, 1));
        assert_eq!(pair_at(3, 1), (0, 2));
        assert_eq!(pair_at(3, 2), (1, 2));
        // First and last rank of a larger universe.
        let n = 100;
        assert_eq!(pair_at(n, 0), (0, 1));
        assert_eq!(pair_at(n, pair_count(n) - 1), (n - 2, n - 1));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn pair_at_past_end_panics() {
        let _ = pair_at(4, pair_count(4));
    }

    /// Chunking the triangular range and unranking each chunk's first
    /// index must tile the full pair list exactly — the property the
    /// level-2 sweep relies on instead of a materialized pair vector.
    #[test]
    fn chunked_unrank_tiles_the_pair_list() {
        for n in [2usize, 3, 9, 24] {
            let all: Vec<(usize, usize)> = (0..n)
                .flat_map(|i| ((i + 1)..n).map(move |j| (i, j)))
                .collect();
            for parts in [1usize, 2, 3, 8, 64] {
                let mut tiled = Vec::new();
                for (s, e) in chunk_ranges(pair_count(n), parts) {
                    // Unrank the chunk start, then advance sequentially —
                    // exactly what the sweep does.
                    if s == e {
                        continue;
                    }
                    let (mut i, mut j) = pair_at(n, s);
                    for _ in s..e {
                        tiled.push((i, j));
                        j += 1;
                        if j == n {
                            i += 1;
                            j = i + 1;
                        }
                    }
                }
                assert_eq!(tiled, all, "n={n} parts={parts}");
            }
        }
        // Empty universes produce no chunks at all.
        for n in [0usize, 1] {
            assert!(chunk_ranges(pair_count(n), 4).is_empty());
        }
    }

    /// Reference extension: the old `Vec<Vec<bool>>` adjacency walk.
    fn extend_naive(adj: &[Vec<bool>], active: &[bool], sub: &[u32]) -> Vec<u32> {
        let n = adj.len();
        let last = *sub.last().unwrap() as usize;
        let mut out = Vec::new();
        for j in (last + 1)..n {
            if !active[j] {
                continue;
            }
            if sub.iter().all(|&i| adj[i as usize][j]) {
                out.push(j as u32);
            }
        }
        out
    }

    #[test]
    fn extension_mask_matches_adj_walk_on_random_graphs() {
        let mut rng = StdRng::seed_from_u64(2002);
        for n in [3usize, 17, 64, 65, 129] {
            let mut adj = vec![vec![false; n]; n];
            let mut masks = NeighborMasks::new(n);
            #[allow(clippy::needless_range_loop)]
            for i in 0..n {
                for j in (i + 1)..n {
                    if rng.random_f64() < 0.4 {
                        adj[i][j] = true;
                        adj[j][i] = true;
                        masks.connect(i, j);
                    }
                }
            }
            let mut active_vec = vec![true; n];
            let mut active = BitSet::full(n);
            #[allow(clippy::needless_range_loop)]
            for i in 0..n {
                if rng.random_f64() < 0.15 {
                    active_vec[i] = false;
                    active.remove(i);
                }
            }
            let mut scratch = masks.scratch();
            // Random cliques of sizes 1..=4 (members need not actually be
            // mutually adjacent for the comparison to be meaningful).
            for _ in 0..200 {
                let len = rng.random_range(1usize..=4.min(n));
                let mut sub: Vec<u32> = (0..len)
                    .map(|_| rng.random_range(0usize..n) as u32)
                    .collect();
                sub.sort_unstable();
                sub.dedup();
                masks.extension_mask(&sub, &active, &mut scratch);
                let got: Vec<u32> = scratch.iter().map(|j| j as u32).collect();
                assert_eq!(got, extend_naive(&adj, &active_vec, &sub), "sub={sub:?}");
            }
        }
    }

    #[test]
    fn connect_and_connected() {
        let mut m = NeighborMasks::new(5);
        assert!(!m.is_empty() && m.len() == 5);
        m.connect(1, 3);
        assert!(m.connected(1, 3) && m.connected(3, 1));
        assert!(!m.connected(1, 2));
    }
}

//! Candidate arc implementations: topology and cost (paper Section 3's
//! "simple nonlinear optimization problem").
//!
//! A surviving merge subset only becomes a *candidate* once its exact
//! structure is known: where the mux/demux hubs sit, which links realize
//! each branch and the common path, and what it all costs. The paper
//! solves a small constrained optimization per candidate; here that is
//! the two-hub solver [`ccs_geom::twohub::TwoHubProblem`] run under the
//! constraint graph's norm, with per-length link prices as weights,
//! followed by exact per-segment costing through the point-to-point
//! engine ([`crate::p2p`]).

use crate::constraint::{ArcId, ConstraintGraph, PortId};
use crate::error::SynthesisError;
use crate::library::{Library, NodeKind};
use crate::p2p::{best_plan, P2pPlan};
use crate::units::Bandwidth;
use ccs_exec::ShardedCache;
use ccs_geom::twohub::TwoHubProblem;
use ccs_geom::weber::WeberProblem;
use ccs_geom::Point2;

/// Lengths below this are treated as a coincident hub/port (no link).
const ZERO_LEN: f64 = 1e-9;

/// A structural endpoint of a candidate segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Endpoint {
    /// A computational vertex `χ(v)` (a port of the constraint graph).
    Port(PortId),
    /// The source-side merge hub (mux).
    HubA,
    /// The destination-side merge hub (demux).
    HubB,
}

/// One costed point-to-point stretch inside a candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentPlan {
    /// Structural start.
    pub from: Endpoint,
    /// Structural end.
    pub to: Endpoint,
    /// Start position.
    pub from_pos: Point2,
    /// End position.
    pub to_pos: Point2,
    /// Segment length under the graph norm.
    pub length: f64,
    /// Aggregate bandwidth the segment must carry.
    pub demand: Bandwidth,
    /// The point-to-point plan implementing the stretch.
    pub plan: P2pPlan,
    /// Constraint arcs (by index) routed over this segment.
    pub arcs: Vec<usize>,
}

/// The structural class of a candidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CandidateKind {
    /// A single-arc point-to-point implementation (Def. 2.6/2.7).
    PointToPoint,
    /// A k-way merging through a shared common path (Def. 2.8).
    Merging {
        /// The merge order `k ≥ 2`.
        k: usize,
    },
}

/// Which library nodes realize a merging's hubs.
///
/// The paper's library includes *switches* that "while being able to act
/// as a repeater, enable the connection of multiple links": when the two
/// hubs coincide (a star rather than a dumbbell) a single switch can
/// replace the mux/demux pair — chosen whenever it is available and
/// cheaper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HubHardware {
    /// A mux at hub A and a demux at hub B (the general dumbbell).
    MuxDemux,
    /// One switch at the shared hub position (star topologies only).
    SingleSwitch,
}

/// A fully costed candidate arc implementation — one prospective column
/// of the covering matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// Covered constraint arcs (sorted indices).
    pub arcs: Vec<usize>,
    /// Structural class.
    pub kind: CandidateKind,
    /// Mux hub position (merging only).
    pub hub_a: Option<Point2>,
    /// Demux hub position (merging only).
    pub hub_b: Option<Point2>,
    /// The costed segments.
    pub segments: Vec<SegmentPlan>,
    /// Which library nodes realize the hubs (merging only; meaningless
    /// for point-to-point candidates, where it stays `MuxDemux`).
    pub hub_hardware: HubHardware,
    /// Hub node costs (merging only; per-segment node costs such as
    /// repeaters live inside each segment's plan cost).
    pub node_cost: f64,
    /// Total cost `C(P)`.
    pub cost: f64,
}

impl Candidate {
    /// Total repeaters across all segments.
    pub fn total_repeaters(&self) -> u32 {
        self.segments.iter().map(|s| s.plan.total_repeaters()).sum()
    }

    /// Total link instances across all segments.
    pub fn total_links(&self) -> u32 {
        self.segments.iter().map(|s| s.plan.total_links()).sum()
    }
}

/// Builds the optimum point-to-point candidate for one arc.
///
/// # Errors
///
/// Propagates [`best_plan`] errors — a point-to-point implementation must
/// exist for synthesis to be feasible at all.
pub fn point_to_point_candidate(
    graph: &ConstraintGraph,
    library: &Library,
    arc_idx: usize,
) -> Result<Candidate, SynthesisError> {
    // One profiler call per arc, independent of chunking/threads.
    let _profile = ccs_obs::profile::scope("plan_arc");
    let id = ArcId(arc_idx as u32);
    let arc = graph.arc(id);
    let plan =
        crate::p2p::best_plan_limited(library, arc.distance, arc.bandwidth, arc.max_hops, id)?;
    let (from_pos, to_pos) = graph.arc_endpoints(id);
    let segment = SegmentPlan {
        from: Endpoint::Port(arc.src),
        to: Endpoint::Port(arc.dst),
        from_pos,
        to_pos,
        length: arc.distance,
        demand: arc.bandwidth,
        plan,
        arcs: vec![arc_idx],
    };
    Ok(Candidate {
        arcs: vec![arc_idx],
        kind: CandidateKind::PointToPoint,
        hub_a: None,
        hub_b: None,
        hub_hardware: HubHardware::MuxDemux,
        node_cost: 0.0,
        cost: plan.cost,
        segments: vec![segment],
    })
}

/// Shared memoization for candidate construction across one synthesis
/// run (valid for a single `(graph, library)` pair).
///
/// The same constraint arc appears in many surviving merge subsets, and
/// every appearance re-derives the arc's hub-placement weight — the
/// [`effective_rate`] scan over the whole link library that feeds the
/// Weber/two-hub solves. The cache keys that solve input by the demand's
/// bit pattern, so across a placement fan-out each distinct demand is
/// priced exactly once no matter how many subsets (or worker threads)
/// ask. Values are pure functions of the key, so concurrent lookups are
/// deterministic by construction.
#[derive(Debug, Default)]
pub struct PlacementCache {
    rates: ShardedCache<u64, Option<f64>>,
    floors: ShardedCache<u64, f64>,
}

impl PlacementCache {
    /// An empty, unbounded cache (the right default for a one-shot
    /// synthesis run, whose distinct demand count is bounded by the
    /// instance).
    pub fn new() -> PlacementCache {
        PlacementCache::default()
    }

    /// An empty cache bounded to `per_shard` entries per shard (16
    /// shards per table), for long-running processes that share one
    /// cache across many requests. Eviction is deterministic — see
    /// [`ShardedCache::bounded`].
    pub fn bounded(per_shard: usize) -> PlacementCache {
        PlacementCache {
            rates: ShardedCache::bounded(per_shard),
            floors: ShardedCache::bounded(per_shard),
        }
    }

    /// Total entries evicted from both tables so far.
    pub fn evictions(&self) -> u64 {
        self.rates.evictions() + self.floors.evictions()
    }

    /// Memoized [`effective_rate`].
    pub fn effective_rate(&self, library: &Library, demand: Bandwidth) -> Option<f64> {
        self.rates
            .get_or_insert_with(demand.as_mbps().to_bits(), || {
                effective_rate(library, demand)
            })
    }

    /// Memoized [`rate_floor`].
    pub fn rate_floor(&self, library: &Library, demand: Bandwidth) -> f64 {
        self.floors
            .get_or_insert_with(demand.as_mbps().to_bits(), || rate_floor(library, demand))
    }

    /// Distinct demands priced so far.
    pub fn len(&self) -> usize {
        self.rates.len()
    }

    /// Whether nothing has been priced yet.
    pub fn is_empty(&self) -> bool {
        self.rates.is_empty()
    }
}

/// The cheapest per-unit-length price at which the library can carry
/// `demand` — the linear surrogate used as a hub-placement weight.
///
/// Returns `None` when no link can carry the demand even with
/// duplication.
pub fn effective_rate(library: &Library, demand: Bandwidth) -> Option<f64> {
    let rep_cost = library.node_cost(NodeKind::Repeater).unwrap_or(0.0);
    library
        .links()
        .filter_map(|(_, l)| {
            let lanes = l.bandwidth.lanes_for(demand)? as f64;
            let mut rate = l.rate_per_length() * lanes;
            if l.max_length.is_finite() {
                // Amortized repeater price per unit length.
                rate += lanes * rep_cost / l.max_length;
            }
            Some(rate)
        })
        .min_by(f64::total_cmp)
}

/// A *true* lower bound on the per-unit-length cost of carrying
/// `demand` over any distance with this library.
///
/// Unlike [`effective_rate`] — a placement *weight* that folds amortized
/// repeater prices in — this keeps only what every feasible plan must
/// pay: `lanes_for(demand)` lanes of the link's unavoidable per-length
/// charge (the rate for per-length links, `cost / max_length` for
/// length-capped per-segment links since a span of `d` needs at least
/// `d / max_length` segments, and `0` for unbounded per-segment links
/// whose one flat segment can span anything). Repeater and duplication
/// surcharges only raise real plans above this floor.
///
/// Returns [`f64::INFINITY`] when no link can carry the demand — the
/// exact feasibility condition under which [`effective_rate`] returns
/// `None`.
pub fn rate_floor(library: &Library, demand: Bandwidth) -> f64 {
    library
        .links()
        .filter_map(|(_, l)| {
            let lanes = l.bandwidth.lanes_for(demand)? as f64;
            let per_len = match l.cost {
                crate::library::LinkCost::PerLength(rate) => rate,
                crate::library::LinkCost::PerSegment(c) => {
                    if l.max_length.is_finite() && l.max_length > 0.0 {
                        c / l.max_length
                    } else {
                        0.0
                    }
                }
            };
            Some(lanes * per_len)
        })
        .min_by(f64::total_cmp)
        .unwrap_or(f64::INFINITY)
}

/// A cheap geometric lower bound on [`merge_candidate`]'s cost for
/// `subset`, used to gate the Weber/two-hub solves (see
/// [`MergeConfig::lb_gate`](crate::merging::MergeConfig::lb_gate)).
///
/// With `r_a = rate_floor(b(a))`, `r_T = rate_floor(Σ b(a))` and hub
/// positions `A`, `B` at trunk distance `T`, any merge implementation
/// costs at least
///
/// ```text
/// node_floor + Σ_a r_a·(|s_a A| + |B t_a|) + r_T·T
/// ```
///
/// and per arc the route triangle inequality gives
/// `|s_a A| + T + |B t_a| ≥ d(a)`, so with `λ = min(1, r_T / Σ_a r_a)`
/// each arc satisfies `r_a·max(0, d(a) − T) + λ·r_a·T ≥ λ·r_a·d(a)`
/// (split on `T ≤ d(a)`). Summing and using `r_T·T ≥ λ·(Σ r_a)·T`:
///
/// ```text
/// cost ≥ node_floor + λ·Σ_a r_a·d(a)
/// ```
///
/// for *any* hub placement — no assumption on rate monotonicity in
/// demand. The returned bound scales that by `(1 − 1e-9)` to absorb
/// zero-length segment trimming (`ZERO_LEN`) and hop-count slop.
///
/// Returns [`f64::INFINITY`] when the subset is structurally infeasible
/// (no hub hardware, or some demand no link can carry) — exactly the
/// cases where [`merge_candidate`] returns `Ok(None)`.
pub fn merge_cost_lower_bound(
    graph: &ConstraintGraph,
    library: &Library,
    subset: &[usize],
    cache: &PlacementCache,
) -> f64 {
    debug_assert!(subset.len() >= 2, "a merging needs at least two arcs");
    let muxdemux = match (
        library.node_cost(NodeKind::Mux),
        library.node_cost(NodeKind::Demux),
    ) {
        (Some(m), Some(d)) => Some(m + d),
        _ => None,
    };
    let node_floor = match (muxdemux, library.node_cost(NodeKind::Switch)) {
        (Some(md), Some(s)) => md.min(s),
        (Some(md), None) => md,
        (None, Some(s)) => s,
        (None, None) => return f64::INFINITY,
    };
    let trunk_demand: Bandwidth = subset
        .iter()
        .map(|&i| graph.arc(ArcId(i as u32)).bandwidth)
        .sum();
    let trunk_floor = cache.rate_floor(library, trunk_demand);
    if trunk_floor.is_infinite() {
        return f64::INFINITY;
    }
    let mut sum_rate = 0.0;
    let mut sum_rate_dist = 0.0;
    for &i in subset {
        let a = graph.arc(ArcId(i as u32));
        let r = cache.rate_floor(library, a.bandwidth);
        if r.is_infinite() {
            return f64::INFINITY;
        }
        sum_rate += r;
        sum_rate_dist += r * a.distance;
    }
    let lambda = if sum_rate > 0.0 {
        (trunk_floor / sum_rate).min(1.0)
    } else {
        1.0
    };
    (node_floor + lambda * sum_rate_dist) * (1.0 - 1e-9)
}

/// Why a merge subset has no implementation with a given library —
/// the provenance recorded when placement declares a subset
/// infeasible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InfeasibleReason {
    /// The library offers neither a mux/demux pair nor a switch, so no
    /// hub can exist at all.
    NoHubHardware,
    /// Some stretch (branch or trunk) has a demand no library link can
    /// carry, or no link covers its length.
    UnroutableDemand,
    /// Every priced topology put some member arc over its hop bound.
    HopLimitExceeded,
}

impl InfeasibleReason {
    /// A stable machine-readable id, used in ledger `detail` tags.
    pub fn id(self) -> &'static str {
        match self {
            InfeasibleReason::NoHubHardware => "no_hub_hardware",
            InfeasibleReason::UnroutableDemand => "unroutable_demand",
            InfeasibleReason::HopLimitExceeded => "hop_limit_exceeded",
        }
    }
}

/// Builds the k-way merge candidate for `subset` (arc indices, sorted).
///
/// Returns `Ok(None)` when the merging is structurally infeasible with
/// this library (no mux/demux, or some stretch cannot be implemented) —
/// such subsets are simply not candidates, which is not an error.
///
/// # Errors
///
/// Currently never returns `Err`; the `Result` keeps room for future
/// hard failures and symmetry with
/// [`point_to_point_candidate`].
///
/// # Panics
///
/// Panics if `subset` has fewer than two arcs or contains an invalid
/// index.
pub fn merge_candidate(
    graph: &ConstraintGraph,
    library: &Library,
    subset: &[usize],
) -> Result<Option<Candidate>, SynthesisError> {
    merge_candidate_cached(graph, library, subset, &PlacementCache::new())
}

/// [`merge_candidate`] with a shared [`PlacementCache`], for callers
/// that price many subsets of the same graph/library pair (possibly
/// from several threads at once).
///
/// # Errors
///
/// Same contract as [`merge_candidate`].
///
/// # Panics
///
/// Panics if `subset` has fewer than two arcs or contains an invalid
/// index.
pub fn merge_candidate_cached(
    graph: &ConstraintGraph,
    library: &Library,
    subset: &[usize],
    cache: &PlacementCache,
) -> Result<Option<Candidate>, SynthesisError> {
    merge_candidate_explained(graph, library, subset, cache).map(Result::ok)
}

/// [`merge_candidate_cached`], but an infeasible subset reports *why*
/// (`Ok(Err(reason))`) instead of a bare `None` — the provenance the
/// decision ledger records for `ccs explain`.
///
/// # Errors
///
/// Same contract as [`merge_candidate`].
///
/// # Panics
///
/// Panics if `subset` has fewer than two arcs or contains an invalid
/// index.
pub fn merge_candidate_explained(
    graph: &ConstraintGraph,
    library: &Library,
    subset: &[usize],
    cache: &PlacementCache,
) -> Result<Result<Candidate, InfeasibleReason>, SynthesisError> {
    assert!(subset.len() >= 2, "a merging needs at least two arcs");
    // One profiler call per subset, independent of chunking/threads.
    let _profile = ccs_obs::profile::scope("solve_merge");

    // Hub hardware on offer.
    let muxdemux_cost = match (
        library.node_cost(NodeKind::Mux),
        library.node_cost(NodeKind::Demux),
    ) {
        (Some(m), Some(d)) => Some(m + d),
        _ => None,
    };
    let switch_cost = library.node_cost(NodeKind::Switch);
    if muxdemux_cost.is_none() && switch_cost.is_none() {
        return Ok(Err(InfeasibleReason::NoHubHardware));
    }

    let arcs: Vec<_> = subset
        .iter()
        .map(|&i| (i, graph.arc(ArcId(i as u32))))
        .collect();
    let trunk_demand: Bandwidth = arcs.iter().map(|(_, a)| a.bandwidth).sum();

    // Hub placement with per-length price weights.
    let Some(trunk_rate) = cache.effective_rate(library, trunk_demand) else {
        return Ok(Err(InfeasibleReason::UnroutableDemand));
    };
    let mut sources = Vec::with_capacity(arcs.len());
    let mut sinks = Vec::with_capacity(arcs.len());
    for (_, a) in &arcs {
        let Some(rate) = cache.effective_rate(library, a.bandwidth) else {
            return Ok(Err(InfeasibleReason::UnroutableDemand));
        };
        sources.push((graph.position(a.src), rate));
        sinks.push((graph.position(a.dst), rate));
    }

    // The reason reported when every attempted topology fails (each
    // failed attempt overwrites it, so the star's reason wins when both
    // topologies were priced — deterministic either way).
    let mut why = InfeasibleReason::UnroutableDemand;

    // Topology 1: the general dumbbell (two hubs, mux/demux required).
    let dumbbell = if let Some(md) = muxdemux_cost {
        let sol =
            TwoHubProblem::new(sources.clone(), sinks.clone(), trunk_rate).solve(graph.norm());
        if ccs_obs::enabled() {
            ccs_obs::counter("placement.twohub_solves", 1);
            ccs_obs::counter("placement.twohub_iterations", sol.iterations as u64);
            ccs_obs::gauge("placement.twohub_residual", sol.residual);
        }
        match build_merge(
            graph,
            library,
            subset,
            &arcs,
            trunk_demand,
            sol.hub_a,
            sol.hub_b,
            md,
            HubHardware::MuxDemux,
        )? {
            Ok(c) => Some(c),
            Err(reason) => {
                why = reason;
                None
            }
        }
    } else {
        None
    };

    // Topology 2: the star (one shared hub). A single switch can realize
    // it; a co-located mux/demux pair is the fallback when the switch is
    // absent or pricier.
    let star_anchors: Vec<(Point2, f64)> = sources.iter().chain(&sinks).copied().collect();
    let star_hub = WeberProblem::new(star_anchors).solve(graph.norm());
    ccs_obs::counter("placement.weber_solves", 1);
    let star_hardware = match (switch_cost, muxdemux_cost) {
        (Some(s), Some(md)) if s <= md => Some((HubHardware::SingleSwitch, s)),
        (Some(s), None) => Some((HubHardware::SingleSwitch, s)),
        (_, Some(md)) => Some((HubHardware::MuxDemux, md)),
        (None, None) => None,
    };
    let star = match star_hardware {
        Some((hw, node_cost)) => match build_merge(
            graph,
            library,
            subset,
            &arcs,
            trunk_demand,
            star_hub,
            star_hub,
            node_cost,
            hw,
        )? {
            Ok(c) => Some(c),
            Err(reason) => {
                why = reason;
                None
            }
        },
        None => None,
    };

    Ok(match (dumbbell, star) {
        (Some(d), Some(s)) => Ok(if s.cost < d.cost { s } else { d }),
        (Some(c), None) | (None, Some(c)) => Ok(c),
        (None, None) => Err(why),
    })
}

/// Prices one concrete merge topology; `Err(reason)` when some stretch
/// cannot be implemented with this library or a hop bound is exceeded.
#[allow(clippy::too_many_arguments)] // internal constructor, not public API
fn build_merge(
    graph: &ConstraintGraph,
    library: &Library,
    subset: &[usize],
    arcs: &[(usize, &crate::constraint::Channel)],
    trunk_demand: Bandwidth,
    hub_a: Point2,
    hub_b: Point2,
    node_cost: f64,
    hub_hardware: HubHardware,
) -> Result<Result<Candidate, InfeasibleReason>, SynthesisError> {
    let norm = graph.norm();
    let mut segments = Vec::new();
    let mut cost = node_cost;

    // Source branches.
    for (idx, a) in arcs {
        let pos = graph.position(a.src);
        let len = norm.distance(pos, hub_a);
        if len <= ZERO_LEN {
            continue;
        }
        let Ok(plan) = best_plan(library, len, a.bandwidth, ArcId(*idx as u32)) else {
            return Ok(Err(InfeasibleReason::UnroutableDemand));
        };
        cost += plan.cost;
        segments.push(SegmentPlan {
            from: Endpoint::Port(a.src),
            to: Endpoint::HubA,
            from_pos: pos,
            to_pos: hub_a,
            length: len,
            demand: a.bandwidth,
            plan,
            arcs: vec![*idx],
        });
    }

    // Common path (trunk). A star topology has none by construction.
    let trunk_len = norm.distance(hub_a, hub_b);
    if trunk_len > ZERO_LEN {
        let Ok(plan) = best_plan(library, trunk_len, trunk_demand, ArcId(subset[0] as u32)) else {
            return Ok(Err(InfeasibleReason::UnroutableDemand));
        };
        cost += plan.cost;
        segments.push(SegmentPlan {
            from: Endpoint::HubA,
            to: Endpoint::HubB,
            from_pos: hub_a,
            to_pos: hub_b,
            length: trunk_len,
            demand: trunk_demand,
            plan,
            arcs: subset.to_vec(),
        });
    }

    // Destination branches.
    for (idx, a) in arcs {
        let pos = graph.position(a.dst);
        let len = norm.distance(hub_b, pos);
        if len <= ZERO_LEN {
            continue;
        }
        let Ok(plan) = best_plan(library, len, a.bandwidth, ArcId(*idx as u32)) else {
            return Ok(Err(InfeasibleReason::UnroutableDemand));
        };
        cost += plan.cost;
        segments.push(SegmentPlan {
            from: Endpoint::HubB,
            to: Endpoint::Port(a.dst),
            from_pos: hub_b,
            to_pos: pos,
            length: len,
            demand: a.bandwidth,
            plan,
            arcs: vec![*idx],
        });
    }

    // Latency extension: a member arc's end-to-end hops are the sum over
    // the segments that carry it; exceeding its bound disqualifies the
    // whole merging (we do not re-plan segments under tighter budgets).
    for (idx, a) in arcs {
        if let Some(limit) = a.max_hops {
            let hops: u32 = segments
                .iter()
                .filter(|s| s.arcs.contains(idx))
                .map(|s| s.plan.hops)
                .sum();
            if hops > limit {
                return Ok(Err(InfeasibleReason::HopLimitExceeded));
            }
        }
    }

    Ok(Ok(Candidate {
        arcs: subset.to_vec(),
        kind: CandidateKind::Merging { k: subset.len() },
        hub_a: Some(hub_a),
        hub_b: Some(hub_b),
        segments,
        hub_hardware,
        node_cost,
        cost,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::ConstraintGraph;
    use crate::library::{wan_paper_library, Library, Link};
    use ccs_geom::Norm;

    fn mbps(x: f64) -> Bandwidth {
        Bandwidth::from_mbps(x)
    }

    /// Three 10 Mb/s channels from a tight cluster to one far node —
    /// the shape of the paper's winning merge {a4, a5, a6}.
    fn cluster_to_far() -> ConstraintGraph {
        let mut b = ConstraintGraph::builder(Norm::Euclidean);
        let s0 = b.add_port("A", Point2::new(0.0, 0.0));
        let s1 = b.add_port("B", Point2::new(5.0, 0.0));
        let s2 = b.add_port("C", Point2::new(-2.8, 4.6));
        let d = b.add_port("D", Point2::new(64.8, 76.4));
        b.add_channel(s0, d, mbps(10.0)).unwrap();
        b.add_channel(s1, d, mbps(10.0)).unwrap();
        b.add_channel(s2, d, mbps(10.0)).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn p2p_candidate_mirrors_best_plan() {
        let g = cluster_to_far();
        let lib = wan_paper_library();
        let c = point_to_point_candidate(&g, &lib, 0).unwrap();
        assert_eq!(c.kind, CandidateKind::PointToPoint);
        assert_eq!(c.arcs, vec![0]);
        assert_eq!(c.segments.len(), 1);
        let d = g.arc(ArcId(0)).distance;
        assert!((c.cost - 2000.0 * d).abs() < 1e-6); // radio at $2000/km
        assert!(c.hub_a.is_none());
        assert_eq!(c.total_links(), 1);
    }

    #[test]
    fn effective_rate_picks_cheapest_feasible() {
        let lib = wan_paper_library();
        // 10 Mb/s: radio 1 lane at 2000.
        assert_eq!(effective_rate(&lib, mbps(10.0)), Some(2000.0));
        // 30 Mb/s: radio ×3 = 6000 vs optical 4000 → optical.
        assert_eq!(effective_rate(&lib, mbps(30.0)), Some(4000.0));
        // 22 Mb/s: radio ×2 = 4000 ties optical 4000.
        assert_eq!(effective_rate(&lib, mbps(22.0)), Some(4000.0));
    }

    #[test]
    fn merge_of_shared_destination_beats_p2p_sum() {
        let g = cluster_to_far();
        let lib = wan_paper_library();
        let merged = merge_candidate(&g, &lib, &[0, 1, 2]).unwrap().unwrap();
        assert_eq!(merged.kind, CandidateKind::Merging { k: 3 });
        let p2p_sum: f64 = (0..3)
            .map(|i| point_to_point_candidate(&g, &lib, i).unwrap().cost)
            .sum();
        assert!(
            merged.cost < p2p_sum,
            "merge {} should beat p2p sum {}",
            merged.cost,
            p2p_sum
        );
        // The demux hub should sit at the shared destination: all
        // destination branches have zero length, so no segment ends at a
        // destination port.
        let d_pos = Point2::new(64.8, 76.4);
        assert!(merged.hub_b.unwrap().approx_eq(d_pos, 1e-3));
        // Trunk demand is the sum (30 Mb/s) → optical (radio is 11 Mb/s).
        let trunk = merged
            .segments
            .iter()
            .find(|s| s.from == Endpoint::HubA && s.to == Endpoint::HubB)
            .expect("trunk segment");
        assert_eq!(trunk.demand, mbps(30.0));
        assert_eq!(lib.link(trunk.plan.link).name, "optical");
        assert_eq!(trunk.arcs, vec![0, 1, 2]);
    }

    #[test]
    fn merge_without_mux_is_not_a_candidate() {
        let g = cluster_to_far();
        let lib = Library::builder()
            .link(Link::per_length("radio", mbps(11.0), 2000.0))
            .link(Link::per_length(
                "optical",
                Bandwidth::from_gbps(1.0),
                4000.0,
            ))
            .node(NodeKind::Repeater, 0.0)
            .build()
            .unwrap();
        assert_eq!(merge_candidate(&g, &lib, &[0, 1]).unwrap(), None);
    }

    #[test]
    fn hub_node_costs_are_charged() {
        let g = cluster_to_far();
        let lib = Library::builder()
            .link(Link::per_length("radio", mbps(11.0), 2000.0))
            .link(Link::per_length(
                "optical",
                Bandwidth::from_gbps(1.0),
                4000.0,
            ))
            .node(NodeKind::Repeater, 0.0)
            .node(NodeKind::Mux, 500.0)
            .node(NodeKind::Demux, 700.0)
            .build()
            .unwrap();
        let free = merge_candidate(&g, &wan_paper_library(), &[0, 1, 2])
            .unwrap()
            .unwrap();
        let paid = merge_candidate(&g, &lib, &[0, 1, 2]).unwrap().unwrap();
        assert_eq!(paid.node_cost, 1200.0);
        assert!((paid.cost - free.cost - 1200.0).abs() < 1.0);
    }

    #[test]
    fn segment_arcs_trace_routing() {
        let g = cluster_to_far();
        let lib = wan_paper_library();
        let merged = merge_candidate(&g, &lib, &[0, 1, 2]).unwrap().unwrap();
        // Each arc must appear in at least one branch or the trunk.
        for i in 0..3 {
            assert!(
                merged.segments.iter().any(|s| s.arcs.contains(&i)),
                "arc {i} unrouted"
            );
        }
        // Total cost decomposes into segments + hubs.
        let seg_sum: f64 = merged.segments.iter().map(|s| s.plan.cost).sum();
        assert!((merged.cost - seg_sum - merged.node_cost).abs() < 1e-9);
    }

    #[test]
    fn far_apart_merge_is_costed_but_unattractive() {
        // Two channels in opposite directions across the plane: a merge
        // exists structurally but must cost more than the p2p pair.
        let mut b = ConstraintGraph::builder(Norm::Euclidean);
        let s0 = b.add_port("s0", Point2::new(0.0, 0.0));
        let t0 = b.add_port("t0", Point2::new(100.0, 0.0));
        let s1 = b.add_port("s1", Point2::new(100.0, 50.0));
        let t1 = b.add_port("t1", Point2::new(0.0, 50.0));
        b.add_channel(s0, t0, mbps(10.0)).unwrap();
        b.add_channel(s1, t1, mbps(10.0)).unwrap();
        let g = b.build().unwrap();
        let lib = wan_paper_library();
        let merged = merge_candidate(&g, &lib, &[0, 1]).unwrap().unwrap();
        let p2p_sum: f64 = (0..2)
            .map(|i| point_to_point_candidate(&g, &lib, i).unwrap().cost)
            .sum();
        assert!(merged.cost >= p2p_sum - 1e-6);
    }

    #[test]
    #[should_panic(expected = "at least two arcs")]
    fn singleton_merge_panics() {
        let g = cluster_to_far();
        let _ = merge_candidate(&g, &wan_paper_library(), &[0]);
    }

    /// A library whose only hub hardware is a switch.
    fn switch_only_library() -> Library {
        Library::builder()
            .link(Link::per_length("radio", mbps(11.0), 2000.0))
            .link(Link::per_length(
                "optical",
                Bandwidth::from_gbps(1.0),
                4000.0,
            ))
            .node(NodeKind::Repeater, 0.0)
            .node(NodeKind::Switch, 10.0)
            .build()
            .unwrap()
    }

    #[test]
    fn switch_enables_merging_without_mux_demux() {
        // No mux/demux: the dumbbell is unavailable, but the star with a
        // single switch still produces a candidate.
        let g = cluster_to_far();
        let c = merge_candidate(&g, &switch_only_library(), &[0, 1, 2])
            .unwrap()
            .expect("switch star is a candidate");
        assert_eq!(c.hub_hardware, HubHardware::SingleSwitch);
        assert_eq!(c.node_cost, 10.0);
        // Star topology: hubs coincide, no trunk segment.
        assert_eq!(c.hub_a, c.hub_b);
        assert!(c
            .segments
            .iter()
            .all(|s| !(s.from == Endpoint::HubA && s.to == Endpoint::HubB)));
    }

    #[test]
    fn dumbbell_beats_star_when_trunk_pays() {
        // With mux/demux available, the shared-destination merge keeps
        // the dumbbell (its optical trunk is the whole point).
        let g = cluster_to_far();
        let lib = wan_paper_library();
        let c = merge_candidate(&g, &lib, &[0, 1, 2]).unwrap().unwrap();
        assert_eq!(c.hub_hardware, HubHardware::MuxDemux);
    }

    #[test]
    fn cheap_switch_wins_cost_tie_on_star() {
        // Expensive mux/demux vs cheap switch: when the merge shape is a
        // star anyway, the switch hardware is chosen.
        let lib = Library::builder()
            .link(Link::per_length("radio", mbps(11.0), 2000.0))
            .link(Link::per_length(
                "optical",
                Bandwidth::from_gbps(1.0),
                4000.0,
            ))
            .node(NodeKind::Repeater, 0.0)
            .node(NodeKind::Mux, 400.0)
            .node(NodeKind::Demux, 400.0)
            .node(NodeKind::Switch, 100.0)
            .build()
            .unwrap();
        // Crossing channels: the natural hub is the shared crossing point
        // and the trunk collapses.
        let mut b = ConstraintGraph::builder(Norm::Euclidean);
        let s0 = b.add_port("s0", Point2::new(0.0, 0.0));
        let t0 = b.add_port("t0", Point2::new(10.0, 10.0));
        let s1 = b.add_port("s1", Point2::new(0.0, 10.0));
        let t1 = b.add_port("t1", Point2::new(10.0, 0.0));
        b.add_channel(s0, t0, mbps(10.0)).unwrap();
        b.add_channel(s1, t1, mbps(10.0)).unwrap();
        let g = b.build().unwrap();
        let c = merge_candidate(&g, &lib, &[0, 1]).unwrap().unwrap();
        assert_eq!(c.hub_hardware, HubHardware::SingleSwitch);
        assert_eq!(c.node_cost, 100.0);
    }

    #[test]
    fn rate_floor_drops_repeater_amortization() {
        let lib = wan_paper_library();
        assert_eq!(rate_floor(&lib, mbps(10.0)), 2000.0);
        assert_eq!(rate_floor(&lib, mbps(30.0)), 4000.0);
        // A length-capped per-segment wire floors at cost / max_length
        // per lane; effective_rate adds the amortized repeaters on top.
        let wire = Library::builder()
            .link(Link::fixed_length("w", Bandwidth::from_gbps(1.0), 0.5, 3.0))
            .node(NodeKind::Repeater, 7.0)
            .build()
            .unwrap();
        assert_eq!(rate_floor(&wire, mbps(10.0)), 6.0);
        assert!(effective_rate(&wire, mbps(10.0)).unwrap() > 6.0);
        // An unbounded per-segment link has no unavoidable per-length
        // charge at all.
        let flat = Library::builder()
            .link(Link {
                name: "flat".into(),
                bandwidth: Bandwidth::from_gbps(1.0),
                max_length: f64::INFINITY,
                cost: crate::library::LinkCost::PerSegment(3.0),
            })
            .build()
            .unwrap();
        assert_eq!(rate_floor(&flat, mbps(10.0)), 0.0);
    }

    #[test]
    fn lower_bound_never_exceeds_solved_cost() {
        let g = cluster_to_far();
        let lib = wan_paper_library();
        let cache = PlacementCache::new();
        for subset in [vec![0, 1], vec![0, 2], vec![1, 2], vec![0, 1, 2]] {
            let lb = merge_cost_lower_bound(&g, &lib, &subset, &cache);
            let c = merge_candidate_cached(&g, &lib, &subset, &cache)
                .unwrap()
                .unwrap();
            assert!(
                lb <= c.cost + 1e-9,
                "lb {lb} > cost {} for {subset:?}",
                c.cost
            );
        }
    }

    #[test]
    fn lower_bound_is_infinite_without_hub_hardware() {
        let g = cluster_to_far();
        let lib = Library::builder()
            .link(Link::per_length("radio", mbps(11.0), 2000.0))
            .node(NodeKind::Repeater, 0.0)
            .build()
            .unwrap();
        assert!(merge_cost_lower_bound(&g, &lib, &[0, 1], &PlacementCache::new()).is_infinite());
    }

    #[test]
    fn equal_rate_pair_bound_reaches_p2p_sum() {
        // Two equal-bandwidth arcs: the trunk floor is twice the member
        // floor (two radio lanes), so λ = 1 and the bound reaches the
        // members' p2p sum — exactly the pairs the lb-gate skips without
        // running a solve.
        let g = cluster_to_far();
        let lib = wan_paper_library();
        let cache = PlacementCache::new();
        let lb = merge_cost_lower_bound(&g, &lib, &[0, 1], &cache);
        let p2p_sum: f64 = (0..2)
            .map(|i| point_to_point_candidate(&g, &lib, i).unwrap().cost)
            .sum();
        assert!(lb >= p2p_sum * (1.0 - 1e-6), "lb {lb} vs p2p {p2p_sum}");
    }

    #[test]
    fn star_never_beats_p2p_on_links() {
        // Triangle inequality: routing each arc via a shared hub cannot
        // shorten it, so a star merge's link cost is ≥ the p2p sum — the
        // reason SingleSwitch candidates only matter for hardware cost
        // comparisons and mux-less libraries.
        let g = cluster_to_far();
        let lib = switch_only_library();
        let star = merge_candidate(&g, &lib, &[0, 1, 2]).unwrap().unwrap();
        let p2p_sum: f64 = (0..3)
            .map(|i| point_to_point_candidate(&g, &lib, i).unwrap().cost)
            .sum();
        let star_links = star.cost - star.node_cost;
        assert!(star_links >= p2p_sum - 1e-6);
    }
}

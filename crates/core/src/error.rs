//! Error types for constraint-graph construction and synthesis.

use crate::constraint::{ArcId, PortId};
use crate::library::NodeKind;
use std::fmt;

/// Errors from building a [`ConstraintGraph`](crate::constraint::ConstraintGraph).
#[derive(Debug, Clone, PartialEq)]
pub enum BuildError {
    /// A channel referenced a port that was never added.
    UnknownPort(PortId),
    /// A channel connected a port to itself.
    SelfLoop(PortId),
    /// Two channel endpoints share a position, so the arc distance is
    /// zero; Assumption 2.1 requires every arc implementation to have
    /// strictly positive cost.
    ZeroDistance(PortId, PortId),
    /// A channel required zero bandwidth.
    ZeroBandwidth,
    /// A channel's hop bound was zero (every implementation needs at
    /// least one link).
    ZeroHopBound,
    /// A port position was not finite.
    NonFinitePosition(PortId),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::UnknownPort(p) => write!(f, "unknown port {p}"),
            BuildError::SelfLoop(p) => write!(f, "channel from port {p} to itself"),
            BuildError::ZeroDistance(u, v) => {
                write!(
                    f,
                    "ports {u} and {v} share a position (zero-length channel)"
                )
            }
            BuildError::ZeroBandwidth => write!(f, "channel bandwidth must be positive"),
            BuildError::ZeroHopBound => {
                write!(f, "channel hop bound must be at least one link")
            }
            BuildError::NonFinitePosition(p) => {
                write!(f, "port {p} has a non-finite position")
            }
        }
    }
}

impl std::error::Error for BuildError {}

/// Errors from building a [`Library`](crate::library::Library).
#[derive(Debug, Clone, PartialEq)]
pub enum LibraryError {
    /// The library contained no links at all.
    NoLinks,
    /// A link had zero bandwidth (it could never carry any channel).
    ZeroBandwidthLink(String),
    /// A link had a non-positive maximum length.
    BadLength(String),
    /// A cost figure was negative or non-finite.
    BadCost(String),
    /// The same node kind was specified twice.
    DuplicateNode(NodeKind),
}

impl fmt::Display for LibraryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LibraryError::NoLinks => write!(f, "library must contain at least one link"),
            LibraryError::ZeroBandwidthLink(n) => {
                write!(f, "link {n:?} has zero bandwidth")
            }
            LibraryError::BadLength(n) => {
                write!(f, "link {n:?} has a non-positive maximum length")
            }
            LibraryError::BadCost(n) => write!(f, "{n} has a negative or non-finite cost"),
            LibraryError::DuplicateNode(k) => {
                write!(f, "node kind {k:?} specified more than once")
            }
        }
    }
}

impl std::error::Error for LibraryError {}

/// Errors from running the synthesis pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum SynthesisError {
    /// An arc cannot be implemented: segmentation was required but the
    /// library has no repeater node.
    MissingRepeater(ArcId),
    /// An arc cannot be implemented: duplication was required but the
    /// library lacks a mux or demux node.
    MissingMuxDemux(ArcId),
    /// No link in the library can implement this arc even with
    /// segmentation and duplication.
    NoFeasibleLink(ArcId),
    /// Every feasible implementation exceeds the arc's hop bound.
    HopBoundInfeasible(ArcId),
    /// The covering step failed (propagated from the UCP solver).
    Cover(ccs_covering::CoverError),
    /// The library violates Assumption 2.1 on this constraint graph, so
    /// the prune theorems would be unsound. Carries the offending arcs.
    AssumptionViolated(ArcId, ArcId),
    /// The run was cancelled cooperatively (via
    /// [`ccs_exec::CancelToken`]) before completing; no partial result
    /// is produced.
    Cancelled,
    /// An incremental-session edit did not apply: unknown arc or port,
    /// or the edited instance no longer builds (e.g. a zero rate).
    InvalidEdit(String),
}

impl fmt::Display for SynthesisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthesisError::MissingRepeater(a) => write!(
                f,
                "arc {a} needs segmentation but the library has no repeater"
            ),
            SynthesisError::MissingMuxDemux(a) => write!(
                f,
                "arc {a} needs duplication but the library lacks mux/demux nodes"
            ),
            SynthesisError::NoFeasibleLink(a) => {
                write!(f, "no library link can implement arc {a}")
            }
            SynthesisError::HopBoundInfeasible(a) => {
                write!(f, "every implementation of arc {a} exceeds its hop bound")
            }
            SynthesisError::Cover(e) => write!(f, "covering step failed: {e}"),
            SynthesisError::AssumptionViolated(a, b) => write!(
                f,
                "library violates Assumption 2.1 (cost monotonicity) on arcs {a}, {b}"
            ),
            SynthesisError::Cancelled => write!(f, "synthesis cancelled"),
            SynthesisError::InvalidEdit(why) => write!(f, "invalid edit: {why}"),
        }
    }
}

impl std::error::Error for SynthesisError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SynthesisError::Cover(e) => Some(e),
            _ => None,
        }
    }
}

#[doc(hidden)]
impl From<ccs_covering::CoverError> for SynthesisError {
    fn from(e: ccs_covering::CoverError) -> Self {
        SynthesisError::Cover(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_nonempty_and_lowercase() {
        let errors: Vec<Box<dyn std::error::Error>> = vec![
            Box::new(BuildError::SelfLoop(PortId(1))),
            Box::new(BuildError::ZeroBandwidth),
            Box::new(LibraryError::NoLinks),
            Box::new(SynthesisError::NoFeasibleLink(ArcId(0))),
        ];
        for e in errors {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase() || s.starts_with("arc"));
        }
    }

    #[test]
    fn cover_error_converts_and_chains() {
        let inner = ccs_covering::CoverError::Infeasible(3);
        let e: SynthesisError = inner.clone().into();
        assert_eq!(e, SynthesisError::Cover(inner));
        assert!(std::error::Error::source(&e).is_some());
    }
}

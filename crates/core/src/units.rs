//! Quantity newtypes for the synthesis model.
//!
//! Distances stay in raw coordinate units (the application chooses km or
//! mm); bandwidth gets a newtype because mixing Mb/s and Gb/s is exactly
//! the kind of mistake a type should prevent. Costs are plain `f64`
//! "dollars" — an application-defined optimality figure (Def. 2.2), with
//! no unit of its own.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A channel or link bandwidth.
///
/// Stored internally in Mb/s. Construct with [`Bandwidth::from_mbps`] or
/// [`Bandwidth::from_gbps`]; compare and add freely.
///
/// # Examples
///
/// ```
/// use ccs_core::units::Bandwidth;
///
/// let radio = Bandwidth::from_mbps(11.0);
/// let fiber = Bandwidth::from_gbps(1.0);
/// assert!(fiber > radio);
/// assert_eq!((radio + radio).as_mbps(), 22.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Bandwidth(f64);

impl Bandwidth {
    /// Zero bandwidth.
    pub const ZERO: Bandwidth = Bandwidth(0.0);

    /// Creates a bandwidth from megabits per second.
    ///
    /// # Panics
    ///
    /// Panics if `mbps` is negative or non-finite.
    pub fn from_mbps(mbps: f64) -> Self {
        assert!(
            mbps.is_finite() && mbps >= 0.0,
            "bandwidth must be finite and non-negative, got {mbps}"
        );
        Bandwidth(mbps)
    }

    /// Creates a bandwidth from gigabits per second.
    ///
    /// # Panics
    ///
    /// Panics if `gbps` is negative or non-finite.
    pub fn from_gbps(gbps: f64) -> Self {
        Self::from_mbps(gbps * 1000.0)
    }

    /// The value in megabits per second.
    pub fn as_mbps(self) -> f64 {
        self.0
    }

    /// The value in gigabits per second.
    pub fn as_gbps(self) -> f64 {
        self.0 / 1000.0
    }

    /// `true` for exactly zero bandwidth.
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }

    /// How many lanes of `self` are needed to carry `demand`
    /// (`⌈demand / self⌉`), the duplication count of Def. 2.7.
    ///
    /// Returns `None` when `self` is zero and demand is positive.
    ///
    /// ```
    /// use ccs_core::units::Bandwidth;
    /// let lane = Bandwidth::from_mbps(11.0);
    /// assert_eq!(lane.lanes_for(Bandwidth::from_mbps(10.0)), Some(1));
    /// assert_eq!(lane.lanes_for(Bandwidth::from_mbps(30.0)), Some(3));
    /// assert_eq!(Bandwidth::ZERO.lanes_for(Bandwidth::from_mbps(1.0)), None);
    /// ```
    pub fn lanes_for(self, demand: Bandwidth) -> Option<u32> {
        if demand.0 <= 0.0 {
            return Some(1);
        }
        if self.0 <= 0.0 {
            return None;
        }
        // Tiny epsilon absorbs float noise so demand == capacity → 1 lane.
        Some((demand.0 / self.0 - 1e-12).ceil().max(1.0) as u32)
    }
}

impl Add for Bandwidth {
    type Output = Bandwidth;
    fn add(self, rhs: Bandwidth) -> Bandwidth {
        Bandwidth(self.0 + rhs.0)
    }
}

impl AddAssign for Bandwidth {
    fn add_assign(&mut self, rhs: Bandwidth) {
        self.0 += rhs.0;
    }
}

impl Sub for Bandwidth {
    type Output = Bandwidth;
    /// Saturating at zero: bandwidth is never negative.
    fn sub(self, rhs: Bandwidth) -> Bandwidth {
        Bandwidth((self.0 - rhs.0).max(0.0))
    }
}

impl Mul<f64> for Bandwidth {
    type Output = Bandwidth;
    fn mul(self, rhs: f64) -> Bandwidth {
        Bandwidth(self.0 * rhs)
    }
}

impl Div for Bandwidth {
    type Output = f64;
    fn div(self, rhs: Bandwidth) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for Bandwidth {
    fn sum<I: Iterator<Item = Bandwidth>>(iter: I) -> Bandwidth {
        iter.fold(Bandwidth::ZERO, Add::add)
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1000.0 {
            write!(f, "{:.3} Gb/s", self.as_gbps())
        } else {
            write!(f, "{:.3} Mb/s", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_conversion() {
        assert_eq!(Bandwidth::from_mbps(250.0).as_mbps(), 250.0);
        assert_eq!(Bandwidth::from_gbps(1.0).as_mbps(), 1000.0);
        assert_eq!(Bandwidth::from_mbps(500.0).as_gbps(), 0.5);
        assert!(Bandwidth::ZERO.is_zero());
        assert!(!Bandwidth::from_mbps(1.0).is_zero());
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_rejected() {
        let _ = Bandwidth::from_mbps(-1.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_rejected() {
        let _ = Bandwidth::from_mbps(f64::NAN);
    }

    #[test]
    fn arithmetic() {
        let a = Bandwidth::from_mbps(10.0);
        let b = Bandwidth::from_mbps(4.0);
        assert_eq!((a + b).as_mbps(), 14.0);
        assert_eq!((a - b).as_mbps(), 6.0);
        assert_eq!((b - a).as_mbps(), 0.0); // saturating
        assert_eq!((a * 3.0).as_mbps(), 30.0);
        assert_eq!(a / b, 2.5);
        let total: Bandwidth = [a, b, b].into_iter().sum();
        assert_eq!(total.as_mbps(), 18.0);
    }

    #[test]
    fn ordering() {
        assert!(Bandwidth::from_gbps(1.0) > Bandwidth::from_mbps(999.0));
        assert!(Bandwidth::ZERO < Bandwidth::from_mbps(0.1));
    }

    #[test]
    fn lanes_for_exact_and_fractional() {
        let lane = Bandwidth::from_mbps(10.0);
        assert_eq!(lane.lanes_for(Bandwidth::from_mbps(10.0)), Some(1));
        assert_eq!(lane.lanes_for(Bandwidth::from_mbps(10.1)), Some(2));
        assert_eq!(lane.lanes_for(Bandwidth::from_mbps(99.9)), Some(10));
        assert_eq!(lane.lanes_for(Bandwidth::ZERO), Some(1));
        assert_eq!(Bandwidth::ZERO.lanes_for(Bandwidth::ZERO), Some(1));
    }

    #[test]
    fn display_units_switch() {
        assert_eq!(Bandwidth::from_mbps(11.0).to_string(), "11.000 Mb/s");
        assert_eq!(Bandwidth::from_gbps(2.0).to_string(), "2.000 Gb/s");
    }
}

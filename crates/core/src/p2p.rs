//! Optimum point-to-point arc implementations (paper Def. 2.6/2.7,
//! Lemma 2.1).
//!
//! Implementing a single constraint arc in isolation composes at most
//! three mechanisms:
//!
//! * **arc matching** — one library link spans the whole channel;
//! * **K-way segmentation** — repeaters split a channel longer than any
//!   link can span;
//! * **K-way duplication** — parallel lanes (plus a demux/mux pair) carry
//!   a channel faster than any link.
//!
//! [`best_plan`] searches every library link with the cheapest feasible
//! combination of the three and returns the minimum-cost plan; applying it
//! independently to every arc yields the *optimum point-to-point
//! implementation graph* whose cost is exactly the sum of the per-arc
//! costs (Lemma 2.1).

use crate::constraint::{ArcId, ConstraintGraph};
use crate::error::SynthesisError;
use crate::library::{Library, LinkCost, LinkId, NodeKind, SegmentationPolicy};
use crate::units::Bandwidth;

/// The structural class of a point-to-point plan (Def. 2.7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ImplKind {
    /// One link instance (`hops == 1 && lanes == 1`).
    Matching,
    /// A chain of links joined by repeaters (`hops > 1`).
    Segmentation,
    /// Parallel lanes joined by a demux/mux pair (`lanes > 1`).
    Duplication,
    /// Both mechanisms at once.
    SegmentedDuplication,
}

/// A costed point-to-point implementation plan for one arc.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct P2pPlan {
    /// The library link used.
    pub link: LinkId,
    /// Segments in series per lane.
    pub hops: u32,
    /// Parallel lanes.
    pub lanes: u32,
    /// Repeater instances per lane.
    pub repeaters_per_lane: u32,
    /// Total cost: links + repeaters + (for `lanes > 1`) demux + mux.
    pub cost: f64,
    /// Structural class.
    pub kind: ImplKind,
}

impl P2pPlan {
    /// Total repeater instances across all lanes.
    pub fn total_repeaters(&self) -> u32 {
        self.repeaters_per_lane * self.lanes
    }

    /// Total link instances (segments × lanes).
    pub fn total_links(&self) -> u32 {
        self.hops * self.lanes
    }

    /// Whether the plan needs a demux/mux pair.
    pub fn needs_mux_demux(&self) -> bool {
        self.lanes > 1
    }
}

/// Computes the minimum-cost point-to-point plan for a span of `distance`
/// carrying `bandwidth` (the `findBestPointToPointImplementation` routine
/// of the paper's Fig. 2).
///
/// # Errors
///
/// * [`SynthesisError::MissingRepeater`] — every feasible link needs
///   segmentation but the library has no repeater;
/// * [`SynthesisError::MissingMuxDemux`] — duplication required but mux or
///   demux missing;
/// * [`SynthesisError::NoFeasibleLink`] — no link works at all.
///
/// The `arc` id only labels the error.
///
/// # Examples
///
/// ```
/// use ccs_core::library::wan_paper_library;
/// use ccs_core::p2p::{best_plan, ImplKind};
/// use ccs_core::units::Bandwidth;
/// use ccs_core::constraint::ArcId;
///
/// let lib = wan_paper_library();
/// // A 10 Mb/s channel over 3.6 km fits the radio link directly.
/// let plan = best_plan(&lib, 3.6, Bandwidth::from_mbps(10.0), ArcId(0)).unwrap();
/// assert_eq!(plan.kind, ImplKind::Matching);
/// assert!((plan.cost - 7200.0).abs() < 1e-9); // $2000/km × 3.6 km
/// ```
pub fn best_plan(
    library: &Library,
    distance: f64,
    bandwidth: Bandwidth,
    arc: ArcId,
) -> Result<P2pPlan, SynthesisError> {
    best_plan_limited(library, distance, bandwidth, None, arc)
}

/// [`best_plan`] under an optional hop bound: plans needing more than
/// `max_hops` link instances in series are rejected (the latency
/// extension — see [`crate::constraint::Channel::max_hops`]).
///
/// # Errors
///
/// As [`best_plan`], plus [`SynthesisError::HopBoundInfeasible`] when
/// feasible plans exist but all exceed the bound.
pub fn best_plan_limited(
    library: &Library,
    distance: f64,
    bandwidth: Bandwidth,
    max_hops: Option<u32>,
    arc: ArcId,
) -> Result<P2pPlan, SynthesisError> {
    assert!(
        distance.is_finite() && distance > 0.0,
        "distance must be positive and finite, got {distance}"
    );
    ccs_obs::counter("p2p.plans", 1);
    let mut best: Option<P2pPlan> = None;
    let mut saw_missing_repeater = false;
    let mut saw_missing_muxdemux = false;
    let mut saw_hop_bound = false;

    for (id, link) in library.links() {
        let Some(lanes) = link.bandwidth.lanes_for(bandwidth) else {
            continue;
        };
        let (hops, reps) = hops_and_repeaters(distance, link.max_length, library.segmentation());
        if max_hops.is_some_and(|m| hops > m) {
            saw_hop_bound = true;
            continue;
        }
        if reps > 0 && !library.has_node(NodeKind::Repeater) {
            saw_missing_repeater = true;
            continue;
        }
        if lanes > 1 && !(library.has_node(NodeKind::Mux) && library.has_node(NodeKind::Demux)) {
            saw_missing_muxdemux = true;
            continue;
        }
        let lane_link_cost = match link.cost {
            LinkCost::PerLength(rate) => rate * distance,
            LinkCost::PerSegment(c) => c * hops as f64,
        };
        let rep_cost = library.node_cost(NodeKind::Repeater).unwrap_or(0.0);
        let mut cost = lanes as f64 * (lane_link_cost + reps as f64 * rep_cost);
        if lanes > 1 {
            cost += library.node_cost(NodeKind::Mux).unwrap_or(0.0)
                + library.node_cost(NodeKind::Demux).unwrap_or(0.0);
        }
        let kind = match (hops > 1, lanes > 1) {
            (false, false) => ImplKind::Matching,
            (true, false) => ImplKind::Segmentation,
            (false, true) => ImplKind::Duplication,
            (true, true) => ImplKind::SegmentedDuplication,
        };
        let plan = P2pPlan {
            link: id,
            hops,
            lanes,
            repeaters_per_lane: reps,
            cost,
            kind,
        };
        let better = best.as_ref().is_none_or(|b| {
            plan.cost < b.cost - 1e-12
                || ((plan.cost - b.cost).abs() <= 1e-12 && plan.total_links() < b.total_links())
        });
        if better {
            best = Some(plan);
        }
    }

    best.ok_or(if saw_hop_bound {
        SynthesisError::HopBoundInfeasible(arc)
    } else if saw_missing_repeater && !saw_missing_muxdemux {
        SynthesisError::MissingRepeater(arc)
    } else if saw_missing_muxdemux {
        SynthesisError::MissingMuxDemux(arc)
    } else {
        SynthesisError::NoFeasibleLink(arc)
    })
}

/// Segments and repeaters for a span of `distance` over links capped at
/// `max_length`, under the library's [`SegmentationPolicy`].
fn hops_and_repeaters(distance: f64, max_length: f64, policy: SegmentationPolicy) -> (u32, u32) {
    if max_length.is_infinite() || distance <= max_length * (1.0 + 1e-12) {
        return (1, 0);
    }
    match policy {
        SegmentationPolicy::MinimalRepeaters => {
            let hops = (distance / max_length - 1e-12).ceil().max(1.0) as u32;
            (hops, hops - 1)
        }
        SegmentationPolicy::RepeaterPerCriticalLength => {
            let reps = (distance / max_length + 1e-12).floor() as u32;
            (reps + 1, reps)
        }
    }
}

/// Best point-to-point plans for every arc of `graph` — the optimum
/// point-to-point implementation graph of Def. 2.6, whose cost is the sum
/// of the individual plan costs (Lemma 2.1).
///
/// # Errors
///
/// Propagates the first per-arc failure from [`best_plan`].
pub fn best_plans(
    graph: &ConstraintGraph,
    library: &Library,
) -> Result<Vec<P2pPlan>, SynthesisError> {
    graph
        .arcs()
        .map(|(id, a)| best_plan_limited(library, a.distance, a.bandwidth, a.max_hops, id))
        .collect()
}

/// Checks Assumption 2.1 on `graph` × `library`: for every pair of arcs,
/// `d(a) ≤ d(a′) ∧ b(a) ≤ b(a′)` must imply
/// `C(P(a)) ≤ C(P(a′))`, and every cost must be positive. Returns the
/// first offending pair, or `None` when the assumption holds.
///
/// # Errors
///
/// Propagates [`best_plan`] failures.
pub fn check_assumption(
    graph: &ConstraintGraph,
    library: &Library,
) -> Result<Option<(ArcId, ArcId)>, SynthesisError> {
    let plans = best_plans(graph, library)?;
    let arcs: Vec<_> = graph.arcs().collect();
    for (i, &(ai, ca)) in arcs.iter().enumerate() {
        if plans[i].cost <= 0.0 {
            return Ok(Some((ai, ai)));
        }
        for (j, &(aj, cb)) in arcs.iter().enumerate() {
            if i == j {
                continue;
            }
            let dominated = ca.distance <= cb.distance + 1e-12
                && ca.bandwidth.as_mbps() <= cb.bandwidth.as_mbps() + 1e-12;
            if dominated && plans[i].cost > plans[j].cost + 1e-9 {
                return Ok(Some((ai, aj)));
            }
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::{soc_paper_library, wan_paper_library, Library, Link};
    use ccs_geom::{Norm, Point2};

    fn mbps(x: f64) -> Bandwidth {
        Bandwidth::from_mbps(x)
    }

    #[test]
    fn matching_picks_cheapest_feasible_link() {
        let lib = wan_paper_library();
        let plan = best_plan(&lib, 100.0, mbps(10.0), ArcId(0)).unwrap();
        // Radio ($2000/km) beats optical ($4000/km) at 10 Mb/s.
        assert_eq!(lib.link(plan.link).name, "radio");
        assert_eq!(plan.kind, ImplKind::Matching);
        assert_eq!(plan.cost, 200_000.0);
    }

    #[test]
    fn high_bandwidth_switches_to_optical() {
        let lib = wan_paper_library();
        // 30 Mb/s: radio needs 3 lanes (cost 3×2000×d), optical 1 lane
        // (4000×d) — optical wins.
        let plan = best_plan(&lib, 10.0, mbps(30.0), ArcId(0)).unwrap();
        assert_eq!(lib.link(plan.link).name, "optical");
        assert_eq!(plan.lanes, 1);
        assert_eq!(plan.cost, 40_000.0);
    }

    #[test]
    fn duplication_when_cheaper_than_upgrade() {
        let lib = wan_paper_library();
        // 20 Mb/s: radio ×2 lanes = $4000/km == optical $4000/km; the
        // tie-break prefers fewer total links, so optical matching wins.
        let plan = best_plan(&lib, 5.0, mbps(20.0), ArcId(0)).unwrap();
        assert_eq!(plan.cost, 20_000.0);
        assert_eq!(plan.total_links(), 1);
        assert_eq!(lib.link(plan.link).name, "optical");
    }

    #[test]
    fn segmentation_on_chip() {
        let lib = soc_paper_library(0.6);
        // A 2.0 mm wire: the paper's formula ⌊2.0/0.6⌋ = 3 repeaters.
        let plan = best_plan(&lib, 2.0, mbps(100.0), ArcId(0)).unwrap();
        assert_eq!(plan.kind, ImplKind::Segmentation);
        assert_eq!(plan.repeaters_per_lane, 3);
        assert_eq!(plan.hops, 4);
        assert_eq!(plan.cost, 3.0); // repeaters cost 1 each, wire is free
    }

    #[test]
    fn on_chip_exact_multiple_counts_full_repeaters() {
        let lib = soc_paper_library(0.6);
        // d = 1.2 = 2 × l_crit: the paper counts ⌊1.2/0.6⌋ = 2 repeaters.
        let plan = best_plan(&lib, 1.2, mbps(1.0), ArcId(0)).unwrap();
        assert_eq!(plan.repeaters_per_lane, 2);
    }

    #[test]
    fn short_wire_needs_no_repeater() {
        let lib = soc_paper_library(0.6);
        let plan = best_plan(&lib, 0.5, mbps(1.0), ArcId(0)).unwrap();
        assert_eq!(plan.kind, ImplKind::Matching);
        assert_eq!(plan.cost, 0.0);
    }

    #[test]
    fn minimal_repeaters_policy() {
        let lib = Library::builder()
            .link(Link::per_length_capped("seg", mbps(100.0), 10.0, 1.0))
            .node(NodeKind::Repeater, 5.0)
            .build()
            .unwrap();
        // 25 units over 10-unit links: 3 segments, 2 repeaters.
        let plan = best_plan(&lib, 25.0, mbps(50.0), ArcId(0)).unwrap();
        assert_eq!(plan.hops, 3);
        assert_eq!(plan.repeaters_per_lane, 2);
        assert_eq!(plan.cost, 25.0 + 2.0 * 5.0);
    }

    #[test]
    fn missing_repeater_reported() {
        let lib = Library::builder()
            .link(Link::per_length_capped("short", mbps(10.0), 1.0, 1.0))
            .build()
            .unwrap();
        let err = best_plan(&lib, 5.0, mbps(5.0), ArcId(3)).unwrap_err();
        assert_eq!(err, SynthesisError::MissingRepeater(ArcId(3)));
    }

    #[test]
    fn missing_mux_demux_reported() {
        let lib = Library::builder()
            .link(Link::per_length("thin", mbps(1.0), 1.0))
            .build()
            .unwrap();
        let err = best_plan(&lib, 5.0, mbps(5.0), ArcId(2)).unwrap_err();
        assert_eq!(err, SynthesisError::MissingMuxDemux(ArcId(2)));
    }

    #[test]
    fn segmented_duplication_combined() {
        let lib = Library::builder()
            .link(Link::per_length_capped("l", mbps(10.0), 10.0, 1.0))
            .node(NodeKind::Repeater, 2.0)
            .node(NodeKind::Mux, 3.0)
            .node(NodeKind::Demux, 3.0)
            .build()
            .unwrap();
        // 25 units, 25 Mb/s: 3 lanes × 3 hops.
        let plan = best_plan(&lib, 25.0, mbps(25.0), ArcId(0)).unwrap();
        assert_eq!(plan.kind, ImplKind::SegmentedDuplication);
        assert_eq!(plan.lanes, 3);
        assert_eq!(plan.hops, 3);
        assert_eq!(plan.total_repeaters(), 6);
        // 3 lanes × (25 length + 2 reps × 2) + mux + demux
        assert_eq!(plan.cost, 3.0 * (25.0 + 4.0) + 6.0);
    }

    #[test]
    fn best_plans_covers_all_arcs_lemma_2_1() {
        let mut b = crate::constraint::ConstraintGraph::builder(Norm::Euclidean);
        let p0 = b.add_port("A", Point2::new(0.0, 0.0));
        let p1 = b.add_port("B", Point2::new(5.0, 0.0));
        let p2 = b.add_port("C", Point2::new(0.0, 7.0));
        b.add_channel(p0, p1, mbps(10.0)).unwrap();
        b.add_channel(p1, p2, mbps(10.0)).unwrap();
        let g = b.build().unwrap();
        let lib = wan_paper_library();
        let plans = best_plans(&g, &lib).unwrap();
        assert_eq!(plans.len(), 2);
        // Lemma 2.1: graph cost equals sum of independent plan costs.
        let total: f64 = plans.iter().map(|p| p.cost).sum();
        assert!(total > 0.0);
        assert_eq!(total, plans[0].cost + plans[1].cost);
    }

    #[test]
    fn assumption_holds_for_paper_libraries() {
        let mut b = crate::constraint::ConstraintGraph::builder(Norm::Euclidean);
        let p0 = b.add_port("A", Point2::new(0.0, 0.0));
        let p1 = b.add_port("B", Point2::new(5.0, 0.0));
        let p2 = b.add_port("C", Point2::new(0.0, 100.0));
        b.add_channel(p0, p1, mbps(10.0)).unwrap();
        b.add_channel(p0, p2, mbps(10.0)).unwrap();
        b.add_channel(p1, p2, mbps(10.0)).unwrap();
        let g = b.build().unwrap();
        assert_eq!(check_assumption(&g, &wan_paper_library()).unwrap(), None);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn zero_distance_rejected() {
        let lib = wan_paper_library();
        let _ = best_plan(&lib, 0.0, mbps(1.0), ArcId(0));
    }

    /// Two-tier library: a cheap short link that needs segmentation and a
    /// pricier long-haul link that spans anything in one hop.
    fn two_tier_library() -> Library {
        Library::builder()
            .link(Link::per_length_capped("short", mbps(100.0), 10.0, 1.0))
            .link(Link::per_length("longhaul", mbps(100.0), 3.0))
            .node(NodeKind::Repeater, 0.0)
            .build()
            .unwrap()
    }

    #[test]
    fn hop_bound_switches_to_long_haul() {
        let lib = two_tier_library();
        // 25 units: unconstrained → 3 segmented cheap hops ($25).
        let free = best_plan(&lib, 25.0, mbps(10.0), ArcId(0)).unwrap();
        assert_eq!(free.hops, 3);
        assert_eq!(lib.link(free.link).name, "short");
        // Bounded to one hop → the long-haul link despite 3× the price.
        let tight =
            crate::p2p::best_plan_limited(&lib, 25.0, mbps(10.0), Some(1), ArcId(0)).unwrap();
        assert_eq!(tight.hops, 1);
        assert_eq!(lib.link(tight.link).name, "longhaul");
        assert!(tight.cost > free.cost);
    }

    #[test]
    fn unreachable_hop_bound_is_reported() {
        let lib = Library::builder()
            .link(Link::per_length_capped("short", mbps(100.0), 10.0, 1.0))
            .node(NodeKind::Repeater, 0.0)
            .build()
            .unwrap();
        let err =
            crate::p2p::best_plan_limited(&lib, 25.0, mbps(10.0), Some(2), ArcId(4)).unwrap_err();
        assert_eq!(err, SynthesisError::HopBoundInfeasible(ArcId(4)));
    }

    #[test]
    fn hop_bound_of_one_keeps_matching_plans() {
        let lib = wan_paper_library();
        let plan =
            crate::p2p::best_plan_limited(&lib, 50.0, mbps(10.0), Some(1), ArcId(0)).unwrap();
        assert_eq!(plan.kind, ImplKind::Matching);
    }
}

//! The implementation graph (paper Def. 2.4/2.5).
//!
//! Vertices are either **computational** (the images `χ(v)` of the
//! constraint-graph ports, at the same positions) or **communication**
//! (instances of library nodes: repeaters, muxes, demuxes). Every edge
//! maps to a library link instance — except zero-length *attachment*
//! edges, which connect a port to a node standing at the very same
//! position (the paper glosses over this detail; attachments carry no
//! length, no cost and unlimited bandwidth, so Def. 2.5's cost is
//! unchanged).
//!
//! The graph also records, per constraint arc, the nominal vertex route
//! implementing it, so the independent [`crate::check`] verifier can
//! re-validate everything without trusting the synthesizer.

use crate::constraint::{ArcId, ConstraintGraph, PortId};
use crate::library::{Library, LinkId, NodeKind};
use crate::placement::{Candidate, Endpoint};
use crate::units::Bandwidth;
use ccs_geom::{Norm, Point2};
use ccs_graph::{Digraph, EdgeId, NodeId};
use std::collections::HashMap;

/// A vertex of the implementation graph.
#[derive(Debug, Clone, PartialEq)]
pub enum ImplVertex {
    /// The image `χ(v)` of a constraint-graph port.
    Computational {
        /// The originating port.
        port: PortId,
        /// The port's name, copied for display.
        name: String,
        /// Position (identical to the port's).
        position: Point2,
    },
    /// An instance of a communication node from the library.
    Communication {
        /// Which library node kind this instantiates.
        kind: NodeKind,
        /// Placed position.
        position: Point2,
    },
}

impl ImplVertex {
    /// The vertex position.
    pub fn position(&self) -> Point2 {
        match self {
            ImplVertex::Computational { position, .. }
            | ImplVertex::Communication { position, .. } => *position,
        }
    }

    /// `true` for computational vertices.
    pub fn is_computational(&self) -> bool {
        matches!(self, ImplVertex::Computational { .. })
    }
}

/// What an implementation edge physically is.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EdgeKind {
    /// An instance of a library link.
    Link(LinkId),
    /// A zero-length connection between a port and a co-located node.
    Attachment,
}

/// An edge of the implementation graph.
#[derive(Debug, Clone, PartialEq)]
pub struct ImplEdge {
    /// Physical kind.
    pub kind: EdgeKind,
    /// Geometric length (0 for attachments).
    pub length: f64,
    /// Bandwidth one instance sustains (`∞` for attachments).
    pub capacity: Bandwidth,
    /// Cost of this instance (0 for attachments).
    pub cost: f64,
    /// Segment (lane-group) id: parallel lanes of one duplicated stretch
    /// share it.
    pub lane_group: u32,
    /// Parallel lanes in this edge's group.
    pub lanes: u32,
    /// Constraint arcs (by index) routed over this group.
    pub arcs: Vec<usize>,
}

/// A built communication architecture.
#[derive(Debug, Clone)]
pub struct ImplementationGraph {
    graph: Digraph<ImplVertex, ImplEdge>,
    port_vertex: Vec<NodeId>,
    routes: Vec<Vec<NodeId>>,
    norm: Norm,
    node_cost_total: f64,
    next_group: u32,
}

impl ImplementationGraph {
    /// Assembles the implementation graph realizing `selected` candidates
    /// for `graph` with `library`.
    ///
    /// # Panics
    ///
    /// Panics if a candidate references an arc index outside the graph —
    /// candidates must come from the same synthesis run.
    pub fn build(
        graph: &ConstraintGraph,
        library: &Library,
        selected: &[Candidate],
    ) -> ImplementationGraph {
        let mut b = Builder {
            graph: Digraph::new(),
            port_vertex: Vec::new(),
            routes: vec![Vec::new(); graph.arc_count()],
            node_cost_total: 0.0,
            next_group: 0,
            library,
            source: graph,
        };
        for (pid, port) in graph.ports() {
            let v = b.graph.add_node(ImplVertex::Computational {
                port: pid,
                name: port.name.clone(),
                position: port.position,
            });
            b.port_vertex.push(v);
        }
        for cand in selected {
            b.add_candidate(cand);
        }
        ImplementationGraph {
            graph: b.graph,
            port_vertex: b.port_vertex,
            routes: b.routes,
            norm: graph.norm(),
            node_cost_total: b.node_cost_total,
            next_group: b.next_group,
        }
    }

    /// The underlying digraph.
    pub fn graph(&self) -> &Digraph<ImplVertex, ImplEdge> {
        &self.graph
    }

    /// The norm lengths are measured under.
    pub fn norm(&self) -> Norm {
        self.norm
    }

    /// The implementation vertex `χ(p)` of a port.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not a port of the source graph.
    pub fn port_vertex(&self, p: PortId) -> NodeId {
        self.port_vertex[p.index()]
    }

    /// The nominal vertex route implementing a constraint arc (empty when
    /// the arc was not implemented — the verifier reports that).
    ///
    /// # Panics
    ///
    /// Panics if `a` is out of range.
    pub fn route(&self, a: ArcId) -> &[NodeId] {
        &self.routes[a.index()]
    }

    /// Replaces the nominal vertex route of arc `a` — for what-if
    /// analysis and fault-injection tests that need routes the
    /// synthesizer would not produce (re-entrant, severed, or empty
    /// routes). The verifier and the simulator treat the override like
    /// any other route and report its defects honestly.
    ///
    /// # Panics
    ///
    /// Panics if `a` is out of range.
    pub fn set_route(&mut self, a: ArcId, route: Vec<NodeId>) {
        self.routes[a.index()] = route;
    }

    /// Total architecture cost: link instances plus communication nodes
    /// (Def. 2.5; computational vertices are free).
    pub fn total_cost(&self) -> f64 {
        self.link_cost() + self.node_cost_total
    }

    /// Cost of all link instances.
    pub fn link_cost(&self) -> f64 {
        self.graph.edges().map(|(_, e)| e.data.cost).sum()
    }

    /// Cost of all communication nodes.
    pub fn node_cost(&self) -> f64 {
        self.node_cost_total
    }

    /// Number of link instances (attachments excluded).
    pub fn link_count(&self) -> usize {
        self.graph
            .edges()
            .filter(|(_, e)| matches!(e.data.kind, EdgeKind::Link(_)))
            .count()
    }

    /// Number of communication vertices of `kind`.
    pub fn count_nodes(&self, kind: NodeKind) -> usize {
        self.graph
            .nodes()
            .filter(|(_, v)| matches!(v, ImplVertex::Communication { kind: k, .. } if *k == kind))
            .count()
    }

    /// Number of repeater instances — the headline figure of the paper's
    /// on-chip example.
    pub fn repeater_count(&self) -> usize {
        self.count_nodes(NodeKind::Repeater)
    }

    /// Number of lane groups (costed segments).
    pub fn group_count(&self) -> u32 {
        self.next_group
    }

    /// Edges belonging to lane group `g`.
    pub fn group_edges(
        &self,
        g: u32,
    ) -> impl Iterator<Item = (EdgeId, &ccs_graph::Edge<ImplEdge>)> + '_ {
        self.graph.edges().filter(move |(_, e)| {
            e.data.lane_group == g && matches!(e.data.kind, EdgeKind::Link(_))
        })
    }

    /// Graphviz DOT rendering for inspection.
    pub fn to_dot(&self, name: &str) -> String {
        ccs_graph::dot::to_dot(
            &self.graph,
            name,
            |v| match v {
                ImplVertex::Computational { name, .. } => name.clone(),
                ImplVertex::Communication { kind, position } => {
                    format!("{kind}@{position}")
                }
            },
            |e| match e.kind {
                EdgeKind::Link(l) => format!("{l} len={:.2}", e.length),
                EdgeKind::Attachment => "~".to_string(),
            },
        )
    }
}

struct Builder<'a> {
    graph: Digraph<ImplVertex, ImplEdge>,
    port_vertex: Vec<NodeId>,
    routes: Vec<Vec<NodeId>>,
    node_cost_total: f64,
    next_group: u32,
    library: &'a Library,
    source: &'a ConstraintGraph,
}

impl Builder<'_> {
    fn add_comm(&mut self, kind: NodeKind, position: Point2) -> NodeId {
        self.node_cost_total += self.library.node_cost(kind).unwrap_or(0.0);
        self.graph
            .add_node(ImplVertex::Communication { kind, position })
    }

    fn attachment(&mut self, from: NodeId, to: NodeId) {
        self.graph.add_edge(
            from,
            to,
            ImplEdge {
                kind: EdgeKind::Attachment,
                length: 0.0,
                capacity: Bandwidth::from_mbps(f64::MAX / 1e6),
                cost: 0.0,
                lane_group: u32::MAX,
                lanes: 1,
                arcs: Vec::new(),
            },
        );
    }

    /// Expands one costed segment into vertices and edges; returns the
    /// lane-0 vertex path from `from_v` to `to_v` inclusive.
    fn expand_segment(
        &mut self,
        seg: &crate::placement::SegmentPlan,
        from_v: NodeId,
        to_v: NodeId,
    ) -> Vec<NodeId> {
        let link = self.library.link(seg.plan.link);
        let hops = seg.plan.hops.max(1);
        let lanes = seg.plan.lanes.max(1);
        let group = self.next_group;
        self.next_group += 1;
        let hop_len = seg.length / hops as f64;
        let hop_cost = link.cost_of_span(hop_len);

        // Duplication inserts a demux/mux pair at the stretch endpoints.
        let (entry, exit) = if lanes > 1 {
            let demux = self.add_comm(NodeKind::Demux, seg.from_pos);
            let mux = self.add_comm(NodeKind::Mux, seg.to_pos);
            self.attachment(from_v, demux);
            self.attachment(mux, to_v);
            (demux, mux)
        } else {
            (from_v, to_v)
        };

        let mut lane0: Vec<NodeId> = Vec::new();
        for lane in 0..lanes {
            let mut prev = entry;
            let mut chain = vec![entry];
            for h in 1..=hops {
                let next = if h == hops {
                    exit
                } else {
                    // Repeaters sit along the norm's natural wiring path
                    // (the rectilinear L under Manhattan), so positions
                    // subdivide the segment length exactly.
                    let pos =
                        self.source
                            .norm()
                            .along(seg.from_pos, seg.to_pos, h as f64 / hops as f64);
                    self.add_comm(NodeKind::Repeater, pos)
                };
                self.graph.add_edge(
                    prev,
                    next,
                    ImplEdge {
                        kind: EdgeKind::Link(seg.plan.link),
                        length: hop_len,
                        capacity: link.bandwidth,
                        cost: hop_cost,
                        lane_group: group,
                        lanes,
                        arcs: seg.arcs.clone(),
                    },
                );
                chain.push(next);
                prev = next;
            }
            if lane == 0 {
                lane0 = chain;
            }
        }
        if lanes > 1 {
            let mut full = vec![from_v];
            full.extend(lane0);
            full.push(to_v);
            full
        } else {
            lane0
        }
    }

    fn add_candidate(&mut self, cand: &Candidate) {
        match cand.kind {
            crate::placement::CandidateKind::PointToPoint => {
                let seg = &cand.segments[0];
                let (from_v, to_v) = self.segment_port_vertices(seg);
                let path = self.expand_segment(seg, from_v, to_v);
                self.routes[cand.arcs[0]] = path;
            }
            crate::placement::CandidateKind::Merging { .. } => {
                let hub_a = cand.hub_a.expect("merging has hub A");
                let hub_b = cand.hub_b.expect("merging has hub B");
                // Hub hardware: the general dumbbell uses a mux/demux
                // pair; a star merging may use one switch doing both jobs.
                let (mux_v, demux_v) = match cand.hub_hardware {
                    crate::placement::HubHardware::MuxDemux => (
                        self.add_comm(NodeKind::Mux, hub_a),
                        self.add_comm(NodeKind::Demux, hub_b),
                    ),
                    crate::placement::HubHardware::SingleSwitch => {
                        let sw = self.add_comm(NodeKind::Switch, hub_a);
                        (sw, sw)
                    }
                };
                // Hub costs were already accumulated by add_comm, matching
                // cand.node_cost by construction.

                // Expand each priced segment once.
                let mut src_path: HashMap<usize, Vec<NodeId>> = HashMap::new();
                let mut dst_path: HashMap<usize, Vec<NodeId>> = HashMap::new();
                let mut trunk_path: Option<Vec<NodeId>> = None;
                for seg in &cand.segments {
                    match (seg.from, seg.to) {
                        (Endpoint::Port(p), Endpoint::HubA) => {
                            let from_v = self.port_vertex[p.index()];
                            let path = self.expand_segment(seg, from_v, mux_v);
                            src_path.insert(seg.arcs[0], path);
                        }
                        (Endpoint::HubA, Endpoint::HubB) => {
                            let path = self.expand_segment(seg, mux_v, demux_v);
                            trunk_path = Some(path);
                        }
                        (Endpoint::HubB, Endpoint::Port(p)) => {
                            let to_v = self.port_vertex[p.index()];
                            let path = self.expand_segment(seg, demux_v, to_v);
                            dst_path.insert(seg.arcs[0], path);
                        }
                        other => unreachable!("malformed merge segment {other:?}"),
                    }
                }

                // Zero-length stretches became attachments; a single
                // switch is both hubs at once and needs no connector.
                let trunk = trunk_path.unwrap_or_else(|| {
                    if mux_v == demux_v {
                        vec![mux_v]
                    } else {
                        self.attachment(mux_v, demux_v);
                        vec![mux_v, demux_v]
                    }
                });

                for &arc_idx in &cand.arcs {
                    let arc = self.source.arc(ArcId(arc_idx as u32));
                    let src_v = self.port_vertex[arc.src.index()];
                    let dst_v = self.port_vertex[arc.dst.index()];
                    let head = src_path.get(&arc_idx).cloned().unwrap_or_else(|| {
                        self.attachment(src_v, mux_v);
                        vec![src_v, mux_v]
                    });
                    let tail = dst_path.get(&arc_idx).cloned().unwrap_or_else(|| {
                        self.attachment(demux_v, dst_v);
                        vec![demux_v, dst_v]
                    });
                    let mut route = head;
                    route.extend_from_slice(&trunk[1..]);
                    route.extend_from_slice(&tail[1..]);
                    self.routes[arc_idx] = route;
                }
            }
        }
    }

    fn segment_port_vertices(&self, seg: &crate::placement::SegmentPlan) -> (NodeId, NodeId) {
        let from = match seg.from {
            Endpoint::Port(p) => self.port_vertex[p.index()],
            _ => panic!("point-to-point segment must start at a port"),
        };
        let to = match seg.to {
            Endpoint::Port(p) => self.port_vertex[p.index()],
            _ => panic!("point-to-point segment must end at a port"),
        };
        (from, to)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::ConstraintGraph;
    use crate::library::{soc_paper_library, wan_paper_library, Library, Link};
    use crate::placement::{merge_candidate, point_to_point_candidate};
    use ccs_geom::Norm;

    fn mbps(x: f64) -> Bandwidth {
        Bandwidth::from_mbps(x)
    }

    fn two_arc_graph() -> ConstraintGraph {
        let mut b = ConstraintGraph::builder(Norm::Euclidean);
        let s0 = b.add_port("A", Point2::new(0.0, 0.0));
        let s1 = b.add_port("B", Point2::new(5.0, 0.0));
        let d = b.add_port("D", Point2::new(64.8, 76.4));
        b.add_channel(s0, d, mbps(10.0)).unwrap();
        b.add_channel(s1, d, mbps(10.0)).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn p2p_build_single_edge() {
        let g = two_arc_graph();
        let lib = wan_paper_library();
        let cands = vec![
            point_to_point_candidate(&g, &lib, 0).unwrap(),
            point_to_point_candidate(&g, &lib, 1).unwrap(),
        ];
        let total: f64 = cands.iter().map(|c| c.cost).sum();
        let imp = ImplementationGraph::build(&g, &lib, &cands);
        assert_eq!(imp.link_count(), 2);
        assert_eq!(imp.repeater_count(), 0);
        assert!((imp.total_cost() - total).abs() < 1e-9);
        // Routes are direct port-to-port.
        assert_eq!(imp.route(ArcId(0)).len(), 2);
        assert_eq!(imp.route(ArcId(0))[0], imp.port_vertex(PortId(0)));
        assert_eq!(imp.route(ArcId(0))[1], imp.port_vertex(PortId(2)));
    }

    #[test]
    fn merge_build_has_hubs_and_trunk() {
        let g = two_arc_graph();
        let lib = wan_paper_library();
        let cand = merge_candidate(&g, &lib, &[0, 1]).unwrap().unwrap();
        let cost = cand.cost;
        let imp = ImplementationGraph::build(&g, &lib, std::slice::from_ref(&cand));
        assert_eq!(imp.count_nodes(NodeKind::Mux), 1);
        assert_eq!(imp.count_nodes(NodeKind::Demux), 1);
        assert!((imp.total_cost() - cost).abs() < 1e-6);
        // Both routes start at their source port, end at the destination.
        for (i, arc) in [(0usize, ArcId(0)), (1, ArcId(1))] {
            let r = imp.route(arc);
            assert_eq!(r[0], imp.port_vertex(g.arc(arc).src), "arc {i}");
            assert_eq!(*r.last().unwrap(), imp.port_vertex(g.arc(arc).dst));
            // Interior vertices are communication nodes.
            for &v in &r[1..r.len() - 1] {
                assert!(!imp.graph().node(v).is_computational());
            }
        }
    }

    #[test]
    fn segmentation_inserts_repeaters_at_interpolated_positions() {
        let mut b = ConstraintGraph::builder(Norm::Manhattan);
        let s = b.add_port("s", Point2::new(0.0, 0.0));
        let t = b.add_port("t", Point2::new(1.2, 0.6));
        b.add_channel(s, t, mbps(100.0)).unwrap();
        let g = b.build().unwrap();
        let lib = soc_paper_library(0.6);
        let cand = point_to_point_candidate(&g, &lib, 0).unwrap();
        let imp = ImplementationGraph::build(&g, &lib, &[cand]);
        // Manhattan distance 1.8 → ⌊1.8/0.6⌋ = 3 repeaters, 4 hops.
        assert_eq!(imp.repeater_count(), 3);
        assert_eq!(imp.link_count(), 4);
        assert!((imp.total_cost() - 3.0).abs() < 1e-9);
        // Each hop's Manhattan length is 1.8 / 4.
        for (_, e) in imp.graph().edges() {
            assert!((e.data.length - 0.45).abs() < 1e-9);
        }
        // Route is the full chain.
        assert_eq!(imp.route(ArcId(0)).len(), 5);
    }

    #[test]
    fn manhattan_repeaters_lie_on_the_rectilinear_path() {
        let mut b = ConstraintGraph::builder(Norm::Manhattan);
        let s = b.add_port("s", Point2::new(0.0, 0.0));
        let t = b.add_port("t", Point2::new(1.2, 1.2));
        b.add_channel(s, t, mbps(100.0)).unwrap();
        let g = b.build().unwrap();
        let lib = soc_paper_library(0.6);
        let cand = point_to_point_candidate(&g, &lib, 0).unwrap();
        let imp = ImplementationGraph::build(&g, &lib, std::slice::from_ref(&cand));
        // Every repeater sits on the L-path: either on the horizontal leg
        // (y = 0) or the vertical leg (x = 1.2) — never on the diagonal.
        for (_, v) in imp.graph().nodes() {
            if let ImplVertex::Communication { position, .. } = v {
                let on_l = position.y.abs() < 1e-9 || (position.x - 1.2).abs() < 1e-9;
                assert!(on_l, "repeater off the rectilinear path: {position}");
            }
        }
        assert!(crate::check::verify(&g, &lib, &imp).is_empty());
    }

    #[test]
    fn duplication_inserts_demux_mux_pair() {
        let lib = Library::builder()
            .link(Link::per_length("thin", mbps(4.0), 1.0))
            .node(NodeKind::Mux, 2.0)
            .node(NodeKind::Demux, 3.0)
            .build()
            .unwrap();
        let mut b = ConstraintGraph::builder(Norm::Euclidean);
        let s = b.add_port("s", Point2::new(0.0, 0.0));
        let t = b.add_port("t", Point2::new(10.0, 0.0));
        b.add_channel(s, t, mbps(10.0)).unwrap();
        let g = b.build().unwrap();
        let cand = point_to_point_candidate(&g, &lib, 0).unwrap();
        assert_eq!(cand.segments[0].plan.lanes, 3);
        let imp = ImplementationGraph::build(&g, &lib, std::slice::from_ref(&cand));
        assert_eq!(imp.count_nodes(NodeKind::Demux), 1);
        assert_eq!(imp.count_nodes(NodeKind::Mux), 1);
        assert_eq!(imp.link_count(), 3);
        assert!((imp.node_cost() - 5.0).abs() < 1e-9);
        assert!((imp.total_cost() - cand.cost).abs() < 1e-9);
        // Lane edges share a group and record 3 lanes.
        let groups: Vec<u32> = imp
            .graph()
            .edges()
            .filter(|(_, e)| matches!(e.data.kind, EdgeKind::Link(_)))
            .map(|(_, e)| e.data.lane_group)
            .collect();
        assert!(groups.iter().all(|&g| g == groups[0]));
        let (_, e) = imp.group_edges(groups[0]).next().unwrap();
        assert_eq!(e.data.lanes, 3);
    }

    #[test]
    fn single_switch_merge_builds_and_routes() {
        let lib = Library::builder()
            .link(Link::per_length("radio", mbps(11.0), 2000.0))
            .node(NodeKind::Repeater, 0.0)
            .node(NodeKind::Switch, 5.0)
            .build()
            .unwrap();
        let g = two_arc_graph();
        let cand = merge_candidate(&g, &lib, &[0, 1]).unwrap().unwrap();
        assert_eq!(
            cand.hub_hardware,
            crate::placement::HubHardware::SingleSwitch
        );
        let cost = cand.cost;
        let imp = ImplementationGraph::build(&g, &lib, std::slice::from_ref(&cand));
        assert_eq!(imp.count_nodes(NodeKind::Switch), 1);
        assert_eq!(imp.count_nodes(NodeKind::Mux), 0);
        assert_eq!(imp.count_nodes(NodeKind::Demux), 0);
        assert!((imp.total_cost() - cost).abs() < 1e-6);
        // Routes pass through the switch and verify cleanly.
        for arc in [ArcId(0), ArcId(1)] {
            let r = imp.route(arc);
            assert_eq!(r[0], imp.port_vertex(g.arc(arc).src));
            assert_eq!(*r.last().unwrap(), imp.port_vertex(g.arc(arc).dst));
        }
        assert!(crate::check::verify(&g, &lib, &imp).is_empty());
    }

    #[test]
    fn dot_export_mentions_ports() {
        let g = two_arc_graph();
        let lib = wan_paper_library();
        let cands = vec![point_to_point_candidate(&g, &lib, 0).unwrap()];
        let imp = ImplementationGraph::build(&g, &lib, &cands);
        let dot = imp.to_dot("wan");
        assert!(dot.contains("digraph wan"));
        assert!(dot.contains("\"A\""));
    }
}

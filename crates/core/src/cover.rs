//! Covering-matrix assembly and global selection (paper Section 3,
//! step 2).
//!
//! Rows are constraint arcs, columns are [`Candidate`]s, and the entry
//! `(i, j)` is 1 when candidate `j` implements arc `i`. The weighted
//! unate covering problem is handed to `ccs-covering`.

use crate::error::SynthesisError;
use crate::placement::Candidate;
use ccs_covering::{CoverMatrix, SolveStats};
use ccs_exec::Executor;
use ccs_obs::ledger::{self, Cause, DecisionEvent};

/// Which UCP solver the pipeline uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CoverStrategy {
    /// Exact branch-and-bound (default — the paper's choice).
    #[default]
    Exact,
    /// Greedy ratio heuristic (baseline / very large instances).
    Greedy,
    /// Branch-and-bound with a node budget: returns the best cover found
    /// within the budget; [`ccs_covering::SolveStats::proven_optimal`]
    /// reports whether the search actually completed.
    Anytime {
        /// Maximum branch-and-bound nodes to explore.
        node_limit: u64,
    },
}

/// The outcome of the covering step.
#[derive(Debug, Clone, PartialEq)]
pub struct CoverOutcome {
    /// Indices (into the candidate slice) of the selected candidates.
    pub selected: Vec<usize>,
    /// Total cost of the selection (sum of candidate costs).
    pub cost: f64,
    /// Matrix dimensions `(rows, cols)` actually solved.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    /// Exact-solver statistics (`None` for greedy).
    pub stats: Option<SolveStats>,
}

/// Floor for column weights: Assumption 2.1 demands strictly positive
/// costs, and the UCP solver enforces it; free candidates (e.g. an
/// on-chip wire below critical length) are clamped to this.
const MIN_WEIGHT: f64 = 1e-9;

/// Builds the covering matrix over `candidates` for `n_arcs` rows.
pub fn build_matrix(candidates: &[Candidate], n_arcs: usize) -> CoverMatrix {
    let mut m = CoverMatrix::new(n_arcs);
    for c in candidates {
        m.add_column(c.cost.max(MIN_WEIGHT), c.arcs.iter().copied());
    }
    m
}

/// Selects the minimum-cost subset of `candidates` covering all `n_arcs`
/// constraint arcs.
///
/// # Errors
///
/// [`SynthesisError::Cover`] when the matrix is infeasible (an arc with
/// no candidate — cannot happen when the point-to-point candidates are
/// included) or the solver otherwise fails.
pub fn select(
    candidates: &[Candidate],
    n_arcs: usize,
    strategy: CoverStrategy,
) -> Result<CoverOutcome, SynthesisError> {
    select_inner(
        candidates,
        n_arcs,
        strategy,
        |_, _| false,
        None,
        &Executor::serial(),
    )
}

/// Like [`select`], but warm-starts the exact solver from `seed` — the
/// candidate indices of a known feasible cover (typically the previous
/// selection of an incremental re-synthesis session). The seed bounds
/// the branch-and-bound search; it never changes the returned
/// selection, which stays bit-identical to an unseeded [`select`]
/// (see [`ccs_covering::CoverMatrix::solve_exact_seeded`]). An invalid
/// or infeasible seed is ignored. Non-exact strategies ignore the seed
/// entirely.
///
/// # Errors
///
/// As [`select`].
pub fn select_seeded(
    candidates: &[Candidate],
    n_arcs: usize,
    strategy: CoverStrategy,
    seed: Option<&[usize]>,
) -> Result<CoverOutcome, SynthesisError> {
    select_seeded_on(candidates, n_arcs, strategy, seed, &Executor::serial())
}

/// Like [`select_seeded`], but runs the branch-and-bound over `exec`:
/// the root branch options expand into independent subtree tasks that
/// the executor's workers race through under a shared incumbent bound.
/// The returned selection, ledger events, and deterministic statistics
/// are byte-identical at every worker count — only wall clock and the
/// scheduling-dependent [`SolveStats::steals`]/
/// [`SolveStats::dominance_ns`] fields vary.
///
/// # Errors
///
/// As [`select`].
pub fn select_seeded_on(
    candidates: &[Candidate],
    n_arcs: usize,
    strategy: CoverStrategy,
    seed: Option<&[usize]>,
    exec: &Executor,
) -> Result<CoverOutcome, SynthesisError> {
    select_inner(candidates, n_arcs, strategy, |_, _| false, seed, exec)
}

/// Like [`select`], but removes every candidate for which `excluded`
/// returns `true` before solving the covering problem.
///
/// Used by resilience analysis to re-cover with fragile candidates
/// (e.g. high-order mergings whose shared trunk is a single point of
/// failure) filtered out. Returned indices are into the *original*
/// `candidates` slice.
///
/// # Errors
///
/// [`SynthesisError::Cover`] when the surviving columns no longer cover
/// every arc, or the solver otherwise fails.
pub fn select_excluding<F>(
    candidates: &[Candidate],
    n_arcs: usize,
    strategy: CoverStrategy,
    excluded: F,
) -> Result<CoverOutcome, SynthesisError>
where
    F: Fn(usize, &Candidate) -> bool,
{
    select_inner(
        candidates,
        n_arcs,
        strategy,
        excluded,
        None,
        &Executor::serial(),
    )
}

fn select_inner<F>(
    candidates: &[Candidate],
    n_arcs: usize,
    strategy: CoverStrategy,
    excluded: F,
    seed: Option<&[usize]>,
    exec: &Executor,
) -> Result<CoverOutcome, SynthesisError>
where
    F: Fn(usize, &Candidate) -> bool,
{
    let full = build_matrix(candidates, n_arcs);
    let excluded_cols: Vec<usize> = candidates
        .iter()
        .enumerate()
        .filter(|&(i, c)| excluded(i, c))
        .map(|(i, _)| i)
        .collect();
    // Solve the original matrix directly when nothing is excluded —
    // the common (plain `select`) path pays no column-copy.
    let (m, map) = if excluded_cols.is_empty() {
        (full, (0..candidates.len()).collect())
    } else {
        full.without_columns(&excluded_cols)
    };
    if ccs_obs::enabled() && !excluded_cols.is_empty() {
        ccs_obs::counter("covering.excluded_cols", excluded_cols.len() as u64);
    }
    let profile_solve = ccs_obs::profile::scope("solve_cover");
    // The seed's indices live in the candidate (= unexcluded column)
    // index space, so it only applies when no column was removed.
    let seed = seed.filter(|_| excluded_cols.is_empty());
    let (cover, stats) = match strategy {
        CoverStrategy::Exact => {
            let (c, s) = match seed {
                Some(seed_cols) => m.solve_exact_seeded_on(seed_cols, exec)?,
                None => m.solve_exact_with_stats_on(exec)?,
            };
            (c, Some(s))
        }
        CoverStrategy::Greedy => (m.solve_greedy()?, None),
        CoverStrategy::Anytime { node_limit } => {
            let (c, s) = m.solve_anytime_on(node_limit, exec)?;
            (c, Some(s))
        }
    };
    drop(profile_solve);
    if ccs_obs::enabled() {
        ccs_obs::counter("covering.rows", m.n_rows() as u64);
        ccs_obs::counter("covering.cols", m.n_cols() as u64);
        if let Some(s) = &stats {
            ccs_obs::counter("covering.bnb_nodes", s.nodes);
            ccs_obs::counter("covering.essentials", s.essentials);
            ccs_obs::counter("covering.dominated_columns", s.dominated_columns);
            ccs_obs::counter("covering.dominated_rows", s.dominated_rows);
            ccs_obs::counter("covering.bound_prunes", s.bound_prunes);
            ccs_obs::counter("covering.seed_prunes", s.seed_prunes);
            ccs_obs::counter("covering.incumbent_updates", s.incumbent_updates);
            ccs_obs::counter("covering.subtrees", s.subtrees);
            ccs_obs::counter(
                "covering.shared_bound_tightenings",
                s.shared_bound_tightenings,
            );
            // Work-stealing count is scheduling-dependent (informational
            // in metrics diffs); dominance time is a wall-clock gauge.
            ccs_obs::counter("covering.steals", s.steals);
            ccs_obs::gauge("covering.dominance_ns", s.dominance_ns as f64);
            // How far off the greedy heuristic would have been — the
            // exact search seeds from it, so this re-solve is cheap
            // relative to the branch-and-bound that just ran.
            if let Ok(g) = m.solve_greedy() {
                if cover.cost > 0.0 {
                    ccs_obs::gauge("covering.greedy_gap", g.cost / cover.cost - 1.0);
                }
            }
        }
    }
    // Map submatrix columns back to original candidate indices and
    // report the true candidate cost sum (unclamped).
    let selected: Vec<usize> = cover.columns.iter().map(|&i| map[i]).collect();
    let cost = selected.iter().map(|&i| candidates[i].cost).sum();
    if ledger::enabled() {
        // Provenance: one event per candidate column that survived to
        // the solver, split by the solver's verdict. `index` is the
        // position in the original candidate slice — the same index
        // placement.kept events carry.
        for (col, &orig) in map.iter().enumerate() {
            let c = &candidates[orig];
            let cause = if cover.columns.contains(&col) {
                Cause::CoveringSelected
            } else {
                Cause::CoveringRejected
            };
            ledger::emit(DecisionEvent::new(
                cause,
                c.arcs.iter().map(|&a| a as u32).collect(),
                c.cost,
                0.0,
                format!("index={orig}"),
            ));
        }
    }
    Ok(CoverOutcome {
        selected,
        cost,
        rows: m.n_rows(),
        cols: m.n_cols(),
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::ConstraintGraph;
    use crate::library::wan_paper_library;
    use crate::placement::{merge_candidate, point_to_point_candidate};
    use crate::units::Bandwidth;
    use ccs_geom::{Norm, Point2};

    fn mbps(x: f64) -> Bandwidth {
        Bandwidth::from_mbps(x)
    }

    fn cluster_graph() -> ConstraintGraph {
        let mut b = ConstraintGraph::builder(Norm::Euclidean);
        let s0 = b.add_port("A", Point2::new(0.0, 0.0));
        let s1 = b.add_port("B", Point2::new(5.0, 0.0));
        let d = b.add_port("D", Point2::new(64.8, 76.4));
        b.add_channel(s0, d, mbps(10.0)).unwrap();
        b.add_channel(s1, d, mbps(10.0)).unwrap();
        b.build().unwrap()
    }

    fn candidates(g: &ConstraintGraph) -> Vec<Candidate> {
        let lib = wan_paper_library();
        let mut cands = vec![
            point_to_point_candidate(g, &lib, 0).unwrap(),
            point_to_point_candidate(g, &lib, 1).unwrap(),
        ];
        if let Some(m) = merge_candidate(g, &lib, &[0, 1]).unwrap() {
            cands.push(m);
        }
        cands
    }

    #[test]
    fn matrix_shape_matches_candidates() {
        let g = cluster_graph();
        let cands = candidates(&g);
        let m = build_matrix(&cands, 2);
        assert_eq!(m.n_rows(), 2);
        assert_eq!(m.n_cols(), cands.len());
        assert_eq!(m.rows_of(2), vec![0, 1]); // merge column covers both
    }

    #[test]
    fn exact_selection_picks_cheapest_cover() {
        let g = cluster_graph();
        let cands = candidates(&g);
        let out = select(&cands, 2, CoverStrategy::Exact).unwrap();
        let direct: f64 = cands[0].cost + cands[1].cost;
        let merged = cands[2].cost;
        let expect = direct.min(merged);
        assert!((out.cost - expect).abs() < 1e-6);
        assert!(out.stats.is_some());
        // Selected set actually covers both arcs.
        let mut covered = [false; 2];
        for &i in &out.selected {
            for &a in &cands[i].arcs {
                covered[a] = true;
            }
        }
        assert!(covered.iter().all(|&c| c));
    }

    #[test]
    fn greedy_selection_is_valid() {
        let g = cluster_graph();
        let cands = candidates(&g);
        let exact = select(&cands, 2, CoverStrategy::Exact).unwrap();
        let greedy = select(&cands, 2, CoverStrategy::Greedy).unwrap();
        assert!(greedy.stats.is_none());
        assert!(greedy.cost >= exact.cost - 1e-9);
    }

    #[test]
    fn excluding_merges_falls_back_to_point_to_point() {
        let g = cluster_graph();
        let cands = candidates(&g);
        assert_eq!(cands.len(), 3, "expected the merge candidate to exist");
        let out =
            select_excluding(&cands, 2, CoverStrategy::Exact, |_, c| c.arcs.len() > 1).unwrap();
        // Only the two point-to-point columns survive, and the selected
        // indices refer to the original candidate slice.
        assert_eq!(out.cols, 2);
        let mut sel = out.selected.clone();
        sel.sort_unstable();
        assert_eq!(sel, vec![0, 1]);
        let direct = cands[0].cost + cands[1].cost;
        assert!((out.cost - direct).abs() < 1e-6);
    }

    #[test]
    fn excluding_nothing_matches_select() {
        let g = cluster_graph();
        let cands = candidates(&g);
        let a = select(&cands, 2, CoverStrategy::Exact).unwrap();
        let b = select_excluding(&cands, 2, CoverStrategy::Exact, |_, _| false).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn excluding_everything_is_infeasible() {
        let g = cluster_graph();
        let cands = candidates(&g);
        let err = select_excluding(&cands, 2, CoverStrategy::Exact, |_, _| true).unwrap_err();
        assert!(matches!(err, SynthesisError::Cover(_)));
    }

    #[test]
    fn infeasible_when_arc_uncovered() {
        let g = cluster_graph();
        let cands = vec![point_to_point_candidate(&g, &wan_paper_library(), 0).unwrap()];
        let err = select(&cands, 2, CoverStrategy::Exact).unwrap_err();
        assert!(matches!(err, SynthesisError::Cover(_)));
    }

    #[test]
    fn zero_cost_candidates_are_clamped_not_rejected() {
        // On-chip wires below critical length cost 0; the matrix must
        // still accept them.
        let g = cluster_graph();
        let mut c = point_to_point_candidate(&g, &wan_paper_library(), 0).unwrap();
        c.cost = 0.0;
        let m = build_matrix(&[c], 2);
        assert!(m.weight(0) > 0.0);
    }
}

//! The communication constraint graph (paper Def. 2.1).
//!
//! Vertices are module ports with positions; directed arcs are
//! point-to-point unidirectional channels annotated with the two *arc
//! properties*: the distance `d(a)` (derived from the port positions
//! under the chosen norm, so it is consistent by construction) and the
//! required bandwidth `b(a)`.

use crate::error::BuildError;
use crate::units::Bandwidth;
use ccs_geom::{Norm, Point2};
use std::fmt;

/// Identifier of a port (constraint-graph vertex).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PortId(pub u32);

/// Identifier of a constraint arc (channel).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ArcId(pub u32);

impl PortId {
    /// The id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl ArcId {
    /// The id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PortId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Display for ArcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0 + 1) // paper numbers arcs from a1
    }
}

/// A module port: a named position in the plane.
#[derive(Debug, Clone, PartialEq)]
pub struct Port {
    /// Human-readable name (module/port label).
    pub name: String,
    /// Position `p(v)` in application units.
    pub position: Point2,
}

/// A constraint arc: a channel with its two arc properties (plus the
/// optional hop bound of the latency extension).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Channel {
    /// Source port `u`.
    pub src: PortId,
    /// Destination port `v`.
    pub dst: PortId,
    /// Required bandwidth `b(a)`.
    pub bandwidth: Bandwidth,
    /// Distance `d(a) = ‖p(u) − p(v)‖`, fixed at build time.
    pub distance: f64,
    /// Optional bound on link hops end-to-end (an extension in the
    /// latency-insensitive direction of the paper's conclusion): the
    /// implementation may traverse at most this many link instances in
    /// series. `None` = unconstrained (the paper's model).
    pub max_hops: Option<u32>,
}

/// An immutable, validated communication constraint graph.
///
/// Build one with [`ConstraintGraph::builder`]; the builder enforces the
/// invariants the synthesis algorithm relies on (finite positions, no
/// self-loops, strictly positive distances and bandwidths).
///
/// # Examples
///
/// ```
/// use ccs_core::constraint::ConstraintGraph;
/// use ccs_core::units::Bandwidth;
/// use ccs_geom::{Norm, Point2};
///
/// let mut b = ConstraintGraph::builder(Norm::Manhattan);
/// let cpu = b.add_port("cpu", Point2::new(0.0, 0.0));
/// let mem = b.add_port("mem", Point2::new(3.0, 4.0));
/// let arc = b.add_channel(cpu, mem, Bandwidth::from_gbps(3.2))?;
/// let g = b.build()?;
/// assert_eq!(g.arc(arc).distance, 7.0); // Manhattan
/// # Ok::<(), ccs_core::error::BuildError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ConstraintGraph {
    norm: Norm,
    ports: Vec<Port>,
    arcs: Vec<Channel>,
}

impl ConstraintGraph {
    /// Starts building a constraint graph measured under `norm`.
    pub fn builder(norm: Norm) -> ConstraintGraphBuilder {
        ConstraintGraphBuilder {
            norm,
            ports: Vec::new(),
            arcs: Vec::new(),
        }
    }

    /// The norm distances are measured under.
    pub fn norm(&self) -> Norm {
        self.norm
    }

    /// Number of ports.
    pub fn port_count(&self) -> usize {
        self.ports.len()
    }

    /// Number of arcs (`|A|`).
    pub fn arc_count(&self) -> usize {
        self.arcs.len()
    }

    /// The port record for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a port of this graph.
    pub fn port(&self, id: PortId) -> &Port {
        &self.ports[id.index()]
    }

    /// The channel record for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not an arc of this graph.
    pub fn arc(&self, id: ArcId) -> &Channel {
        &self.arcs[id.index()]
    }

    /// Position of a port, `p(v)`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a port of this graph.
    pub fn position(&self, id: PortId) -> Point2 {
        self.ports[id.index()].position
    }

    /// Source and destination positions of an arc.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not an arc of this graph.
    pub fn arc_endpoints(&self, id: ArcId) -> (Point2, Point2) {
        let a = self.arc(id);
        (self.position(a.src), self.position(a.dst))
    }

    /// Iterates over `(id, port)` pairs.
    pub fn ports(&self) -> impl Iterator<Item = (PortId, &Port)> + '_ {
        self.ports
            .iter()
            .enumerate()
            .map(|(i, p)| (PortId(i as u32), p))
    }

    /// Iterates over `(id, channel)` pairs.
    pub fn arcs(&self) -> impl Iterator<Item = (ArcId, &Channel)> + '_ {
        self.arcs
            .iter()
            .enumerate()
            .map(|(i, a)| (ArcId(i as u32), a))
    }

    /// Iterates over all arc ids.
    pub fn arc_ids(&self) -> impl Iterator<Item = ArcId> + '_ {
        (0..self.arcs.len() as u32).map(ArcId)
    }

    /// Total bandwidth demand over all channels.
    pub fn total_demand(&self) -> Bandwidth {
        self.arcs.iter().map(|a| a.bandwidth).sum()
    }

    /// Sum of all arc distances (the lower bound on total wirelength of
    /// any point-to-point implementation).
    pub fn total_distance(&self) -> f64 {
        self.arcs.iter().map(|a| a.distance).sum()
    }
}

/// Incremental builder for [`ConstraintGraph`].
#[derive(Debug, Clone)]
pub struct ConstraintGraphBuilder {
    norm: Norm,
    ports: Vec<Port>,
    arcs: Vec<Channel>,
}

impl ConstraintGraphBuilder {
    /// Adds a port and returns its id. Positions are validated at
    /// [`build`](Self::build).
    pub fn add_port(&mut self, name: impl Into<String>, position: Point2) -> PortId {
        let id = PortId(self.ports.len() as u32);
        self.ports.push(Port {
            name: name.into(),
            position,
        });
        id
    }

    /// Adds a unidirectional channel from `src` to `dst` requiring
    /// `bandwidth`; the distance is computed from the port positions.
    ///
    /// # Errors
    ///
    /// * [`BuildError::UnknownPort`] — an endpoint was never added;
    /// * [`BuildError::SelfLoop`] — `src == dst`;
    /// * [`BuildError::ZeroDistance`] — the endpoints share a position
    ///   (Assumption 2.1 requires positive implementation costs);
    /// * [`BuildError::ZeroBandwidth`] — `bandwidth` is zero.
    pub fn add_channel(
        &mut self,
        src: PortId,
        dst: PortId,
        bandwidth: Bandwidth,
    ) -> Result<ArcId, BuildError> {
        self.add_channel_limited(src, dst, bandwidth, None)
    }

    /// Like [`add_channel`](Self::add_channel) with an optional bound on
    /// the number of link hops the implementation may use in series
    /// (latency extension; `Some(1)` forces a direct single-link
    /// implementation).
    ///
    /// # Errors
    ///
    /// As [`add_channel`](Self::add_channel), plus
    /// [`BuildError::ZeroBandwidth`]-style rejection of a zero hop bound
    /// via [`BuildError::ZeroHopBound`].
    pub fn add_channel_limited(
        &mut self,
        src: PortId,
        dst: PortId,
        bandwidth: Bandwidth,
        max_hops: Option<u32>,
    ) -> Result<ArcId, BuildError> {
        if src.index() >= self.ports.len() {
            return Err(BuildError::UnknownPort(src));
        }
        if dst.index() >= self.ports.len() {
            return Err(BuildError::UnknownPort(dst));
        }
        if src == dst {
            return Err(BuildError::SelfLoop(src));
        }
        if bandwidth.is_zero() {
            return Err(BuildError::ZeroBandwidth);
        }
        if max_hops == Some(0) {
            return Err(BuildError::ZeroHopBound);
        }
        let distance = self.norm.distance(
            self.ports[src.index()].position,
            self.ports[dst.index()].position,
        );
        if distance <= 0.0 {
            return Err(BuildError::ZeroDistance(src, dst));
        }
        let id = ArcId(self.arcs.len() as u32);
        self.arcs.push(Channel {
            src,
            dst,
            bandwidth,
            distance,
            max_hops,
        });
        Ok(id)
    }

    /// Finalizes the graph.
    ///
    /// # Errors
    ///
    /// [`BuildError::NonFinitePosition`] if any port position is NaN or
    /// infinite.
    pub fn build(self) -> Result<ConstraintGraph, BuildError> {
        for (i, p) in self.ports.iter().enumerate() {
            if !p.position.is_finite() {
                return Err(BuildError::NonFinitePosition(PortId(i as u32)));
            }
        }
        Ok(ConstraintGraph {
            norm: self.norm,
            ports: self.ports,
            arcs: self.arcs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mbps(x: f64) -> Bandwidth {
        Bandwidth::from_mbps(x)
    }

    #[test]
    fn build_simple_graph() {
        let mut b = ConstraintGraph::builder(Norm::Euclidean);
        let p0 = b.add_port("A", Point2::new(0.0, 0.0));
        let p1 = b.add_port("B", Point2::new(3.0, 4.0));
        let a = b.add_channel(p0, p1, mbps(10.0)).unwrap();
        let g = b.build().unwrap();
        assert_eq!(g.port_count(), 2);
        assert_eq!(g.arc_count(), 1);
        assert_eq!(g.arc(a).distance, 5.0);
        assert_eq!(g.arc(a).bandwidth, mbps(10.0));
        assert_eq!(g.port(p0).name, "A");
        assert_eq!(g.norm(), Norm::Euclidean);
    }

    #[test]
    fn distance_follows_norm() {
        let mut b = ConstraintGraph::builder(Norm::Manhattan);
        let p0 = b.add_port("A", Point2::new(0.0, 0.0));
        let p1 = b.add_port("B", Point2::new(3.0, 4.0));
        let a = b.add_channel(p0, p1, mbps(1.0)).unwrap();
        assert_eq!(b.build().unwrap().arc(a).distance, 7.0);
    }

    #[test]
    fn bidirectional_needs_two_arcs() {
        let mut b = ConstraintGraph::builder(Norm::Euclidean);
        let p0 = b.add_port("D", Point2::new(0.0, 0.0));
        let p1 = b.add_port("E", Point2::new(3.6, 0.0));
        let a = b.add_channel(p0, p1, mbps(10.0)).unwrap();
        let a_rev = b.add_channel(p1, p0, mbps(10.0)).unwrap();
        let g = b.build().unwrap();
        assert_ne!(a, a_rev);
        assert_eq!(g.arc(a).src, g.arc(a_rev).dst);
    }

    #[test]
    fn rejects_unknown_port() {
        let mut b = ConstraintGraph::builder(Norm::Euclidean);
        let p0 = b.add_port("A", Point2::ORIGIN);
        let err = b.add_channel(p0, PortId(9), mbps(1.0)).unwrap_err();
        assert_eq!(err, BuildError::UnknownPort(PortId(9)));
    }

    #[test]
    fn rejects_self_loop() {
        let mut b = ConstraintGraph::builder(Norm::Euclidean);
        let p0 = b.add_port("A", Point2::ORIGIN);
        assert_eq!(
            b.add_channel(p0, p0, mbps(1.0)),
            Err(BuildError::SelfLoop(p0))
        );
    }

    #[test]
    fn rejects_coincident_ports() {
        let mut b = ConstraintGraph::builder(Norm::Euclidean);
        let p0 = b.add_port("A", Point2::new(1.0, 1.0));
        let p1 = b.add_port("B", Point2::new(1.0, 1.0));
        assert_eq!(
            b.add_channel(p0, p1, mbps(1.0)),
            Err(BuildError::ZeroDistance(p0, p1))
        );
    }

    #[test]
    fn rejects_zero_bandwidth() {
        let mut b = ConstraintGraph::builder(Norm::Euclidean);
        let p0 = b.add_port("A", Point2::ORIGIN);
        let p1 = b.add_port("B", Point2::new(1.0, 0.0));
        assert_eq!(
            b.add_channel(p0, p1, Bandwidth::ZERO),
            Err(BuildError::ZeroBandwidth)
        );
    }

    #[test]
    fn rejects_non_finite_position_at_build() {
        let mut b = ConstraintGraph::builder(Norm::Euclidean);
        let p = b.add_port("A", Point2::new(f64::NAN, 0.0));
        assert_eq!(b.build().unwrap_err(), BuildError::NonFinitePosition(p));
    }

    #[test]
    fn aggregates() {
        let mut b = ConstraintGraph::builder(Norm::Euclidean);
        let p0 = b.add_port("A", Point2::new(0.0, 0.0));
        let p1 = b.add_port("B", Point2::new(10.0, 0.0));
        let p2 = b.add_port("C", Point2::new(0.0, 5.0));
        b.add_channel(p0, p1, mbps(10.0)).unwrap();
        b.add_channel(p0, p2, mbps(20.0)).unwrap();
        let g = b.build().unwrap();
        assert_eq!(g.total_demand(), mbps(30.0));
        assert_eq!(g.total_distance(), 15.0);
        assert_eq!(g.arc_ids().count(), 2);
        assert_eq!(g.ports().count(), 3);
    }

    #[test]
    fn display_ids_match_paper_numbering() {
        assert_eq!(ArcId(0).to_string(), "a1");
        assert_eq!(PortId(2).to_string(), "p2");
    }
}

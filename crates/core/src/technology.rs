//! Process-technology modeling: where `l_crit` comes from.
//!
//! The paper's on-chip example uses "the notion of critical length
//! (`l_crit`) as defined in [Otten/Brayton, *Planning for Performance*,
//! DAC 1998]" — the segment length at which inserting an optimally sized
//! repeater stops paying off. This module derives it from first-order
//! technology parameters so the on-chip library is *computed* rather than
//! postulated:
//!
//! * an unrepeated wire of length `L` has Elmore delay
//!   `T(L) ≈ 0.7·R_d·(c·L + C_g) + r·L·(0.4·c·L + 0.7·C_g)` — quadratic
//!   in `L`;
//! * splitting into `n` repeated segments makes the delay
//!   `n · T(L/n)`, linearized at the cost of repeater area;
//! * the optimum segment length is `l_crit = √(2·R_d·C_g / (r·c))`.
//!
//! The [`Technology::um_180`] preset is calibrated to the paper's
//! `l_crit = 0.6 mm`; [`Technology::um_130`] shows the deep-sub-micron
//! trend the paper's conclusion warns about (smaller `l_crit`, fewer
//! single-cycle wires).

use crate::library::{Library, Link, NodeKind, SegmentationPolicy};
use crate::units::Bandwidth;

/// First-order electrical parameters of a process node.
///
/// Units: resistances in Ω, capacitances in fF, lengths in mm, delays in
/// ps (1 Ω·fF = 10⁻³ ps).
///
/// # Examples
///
/// ```
/// use ccs_core::technology::Technology;
///
/// let t = Technology::um_180();
/// assert!((t.critical_length_mm() - 0.6).abs() < 1e-9);
/// // A 3 mm wire needs repeaters to meet a 5 ns clock…
/// assert!(t.unrepeated_delay_ps(3.0) > t.repeated_delay_ps(3.0));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Technology {
    /// Process name, e.g. `"0.18um"`.
    pub name: String,
    /// Wire resistance `r`, Ω/mm.
    pub wire_res_ohm_per_mm: f64,
    /// Wire capacitance `c`, fF/mm.
    pub wire_cap_ff_per_mm: f64,
    /// Driver (optimally sized repeater) output resistance `R_d`, Ω.
    pub driver_res_ohm: f64,
    /// Repeater input capacitance `C_g`, fF.
    pub gate_cap_ff: f64,
    /// Clock period, ps.
    pub clock_period_ps: f64,
}

impl Technology {
    /// The paper's 0.18 µm node, calibrated to `l_crit = 0.6 mm`
    /// (`2·R_d·C_g = l² · r · c` with `r = 80 Ω/mm`, `c = 200 fF/mm`).
    pub fn um_180() -> Self {
        Technology {
            name: "0.18um".into(),
            wire_res_ohm_per_mm: 80.0,
            wire_cap_ff_per_mm: 200.0,
            driver_res_ohm: 1800.0,
            gate_cap_ff: 1.6,
            clock_period_ps: 5000.0,
        }
    }

    /// A representative 0.13 µm node: thinner wires (higher `r`), faster
    /// gates, faster clock — the deep-sub-micron regime of the paper's
    /// conclusion.
    pub fn um_130() -> Self {
        Technology {
            name: "0.13um".into(),
            wire_res_ohm_per_mm: 150.0,
            wire_cap_ff_per_mm: 210.0,
            driver_res_ohm: 1400.0,
            gate_cap_ff: 1.0,
            clock_period_ps: 3000.0,
        }
    }

    /// The Otten/Brayton critical length `√(2·R_d·C_g / (r·c))`, mm.
    pub fn critical_length_mm(&self) -> f64 {
        (2.0 * self.driver_res_ohm * self.gate_cap_ff
            / (self.wire_res_ohm_per_mm * self.wire_cap_ff_per_mm))
            .sqrt()
    }

    /// Elmore delay of one driven, unrepeated wire of `length_mm`, ps.
    pub fn unrepeated_delay_ps(&self, length_mm: f64) -> f64 {
        let r = self.wire_res_ohm_per_mm;
        let c = self.wire_cap_ff_per_mm;
        let rd = self.driver_res_ohm;
        let cg = self.gate_cap_ff;
        let ohm_ff =
            0.7 * rd * (c * length_mm + cg) + r * length_mm * (0.4 * c * length_mm + 0.7 * cg);
        ohm_ff * 1e-3 // Ω·fF → ps
    }

    /// Delay of the same wire optimally split into
    /// `⌊length/l_crit⌋ + 1` repeated segments, ps.
    pub fn repeated_delay_ps(&self, length_mm: f64) -> f64 {
        let n = (length_mm / self.critical_length_mm()).floor() as u32 + 1;
        self.segmented_delay_ps(length_mm, n)
    }

    /// Delay of the wire split into `segments` equal repeated stretches,
    /// ps.
    ///
    /// # Panics
    ///
    /// Panics if `segments` is zero.
    pub fn segmented_delay_ps(&self, length_mm: f64, segments: u32) -> f64 {
        assert!(segments > 0, "at least one segment");
        segments as f64 * self.unrepeated_delay_ps(length_mm / segments as f64)
    }

    /// The longest optimally repeated wire whose delay still fits the
    /// clock period (single-cycle communication), mm.
    ///
    /// Repeated delay is asymptotically linear in length, so a simple
    /// bisection suffices.
    pub fn max_single_cycle_length_mm(&self) -> f64 {
        let budget = self.clock_period_ps;
        if self.repeated_delay_ps(1e-3) > budget {
            return 0.0;
        }
        let (mut lo, mut hi) = (1e-3, 1.0);
        while self.repeated_delay_ps(hi) < budget && hi < 1e6 {
            hi *= 2.0;
        }
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if self.repeated_delay_ps(mid) < budget {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// Per-channel timing analysis of a constraint graph under this node
    /// (the paper's closing remark made quantitative): which channels
    /// still cross the chip in one clock after optimal repeater
    /// insertion, and how many *stateful* repeaters (relay-station
    /// latches, in latency-insensitive-design terms) the others need.
    pub fn timing_report(&self, graph: &crate::constraint::ConstraintGraph) -> TimingReport {
        let channels = graph
            .arcs()
            .map(|(arc, a)| {
                let delay_ps = self.repeated_delay_ps(a.distance);
                let cycles = (delay_ps / self.clock_period_ps).ceil().max(1.0) as u32;
                ChannelTiming {
                    arc,
                    length_mm: a.distance,
                    delay_ps,
                    single_cycle: cycles == 1,
                    latches_needed: cycles - 1,
                }
            })
            .collect();
        TimingReport { channels }
    }

    /// Builds the paper-style on-chip library for this node: one wire of
    /// the critical length (free), a unit-cost repeater (so total cost
    /// counts repeaters), and free mux/demux — Example 2's library, but
    /// with `l_crit` computed from the process instead of postulated.
    ///
    /// # Panics
    ///
    /// Never panics in practice — the computed parameters are valid.
    pub fn to_library(&self) -> Library {
        Library::builder()
            .link(Link::fixed_length(
                format!("wire@{}", self.name),
                Bandwidth::from_gbps(1.0),
                self.critical_length_mm(),
                0.0,
            ))
            .node(NodeKind::Repeater, 1.0)
            .node(NodeKind::Mux, 0.0)
            .node(NodeKind::Demux, 0.0)
            .segmentation(SegmentationPolicy::RepeaterPerCriticalLength)
            .build()
            .expect("technology-derived library is valid")
    }
}

/// Timing of one channel under a [`Technology`].
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelTiming {
    /// The channel.
    pub arc: crate::constraint::ArcId,
    /// Channel length, mm.
    pub length_mm: f64,
    /// Optimally repeated wire delay, ps.
    pub delay_ps: f64,
    /// Whether the channel completes within one clock.
    pub single_cycle: bool,
    /// Relay-station latches needed to pipeline it otherwise
    /// (`⌈delay/clock⌉ − 1`).
    pub latches_needed: u32,
}

/// The per-channel timing breakdown of [`Technology::timing_report`].
#[derive(Debug, Clone, PartialEq)]
pub struct TimingReport {
    /// Per-channel figures, in arc order.
    pub channels: Vec<ChannelTiming>,
}

impl TimingReport {
    /// Fraction of channels that are single-cycle.
    pub fn single_cycle_fraction(&self) -> f64 {
        if self.channels.is_empty() {
            return 1.0;
        }
        self.channels.iter().filter(|c| c.single_cycle).count() as f64 / self.channels.len() as f64
    }

    /// Total relay-station latches across all channels.
    pub fn total_latches(&self) -> u32 {
        self.channels.iter().map(|c| c.latches_needed).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_node_gives_paper_l_crit() {
        let t = Technology::um_180();
        assert!((t.critical_length_mm() - 0.6).abs() < 1e-9);
    }

    #[test]
    fn dsm_node_shrinks_l_crit() {
        // The paper's conclusion: below 0.18 µm the critical length
        // shrinks and fewer wires are single-cycle.
        let old = Technology::um_180();
        let new = Technology::um_130();
        assert!(new.critical_length_mm() < old.critical_length_mm());
        assert!(new.max_single_cycle_length_mm() < old.max_single_cycle_length_mm());
    }

    #[test]
    fn unrepeated_delay_is_superlinear() {
        let t = Technology::um_180();
        let d1 = t.unrepeated_delay_ps(1.0);
        let d2 = t.unrepeated_delay_ps(2.0);
        assert!(d2 > 2.0 * d1 - 1e-9, "quadratic term must show");
    }

    #[test]
    fn repeating_helps_long_wires_only() {
        let t = Technology::um_180();
        // Short wire: repeating adds nothing (already one segment).
        assert_eq!(t.repeated_delay_ps(0.3), t.unrepeated_delay_ps(0.3));
        // Long wires: repeating linearizes the quadratic wire term; the
        // win grows with length.
        assert!(t.repeated_delay_ps(10.0) < 0.9 * t.unrepeated_delay_ps(10.0));
        assert!(t.repeated_delay_ps(50.0) < 0.5 * t.unrepeated_delay_ps(50.0));
    }

    #[test]
    fn optimal_segment_count_is_near_l_crit() {
        // Splitting at l_crit should be within a hair of the best integer
        // segmentation.
        let t = Technology::um_180();
        let length = 4.2;
        let auto = t.repeated_delay_ps(length);
        let best = (1..40)
            .map(|n| t.segmented_delay_ps(length, n))
            .fold(f64::INFINITY, f64::min);
        assert!(auto <= best * 1.05, "auto {auto} vs best {best}");
    }

    #[test]
    fn single_cycle_length_meets_budget() {
        let t = Technology::um_180();
        let l = t.max_single_cycle_length_mm();
        assert!(l > 1.0, "a 0.18um chip crosses several mm per cycle");
        assert!(t.repeated_delay_ps(l * 0.99) < t.clock_period_ps);
        assert!(t.repeated_delay_ps(l * 1.01) > t.clock_period_ps);
    }

    #[test]
    fn library_from_technology_matches_paper_library() {
        let t = Technology::um_180();
        let lib = t.to_library();
        assert_eq!(lib.link_count(), 1);
        let (_, wire) = lib.links().next().unwrap();
        assert!((wire.max_length - 0.6).abs() < 1e-9);
        assert_eq!(lib.node_cost(NodeKind::Repeater), Some(1.0));
        assert_eq!(
            lib.segmentation(),
            SegmentationPolicy::RepeaterPerCriticalLength
        );
    }

    #[test]
    fn mpeg4_reproduces_with_derived_library() {
        // The Fig. 5 experiment goes through unchanged when the library
        // comes from the technology model instead of the constant.
        let t = Technology::um_180();
        let lib = t.to_library();
        let mut b = crate::constraint::ConstraintGraph::builder(ccs_geom::Norm::Manhattan);
        let s = b.add_port("s", ccs_geom::Point2::new(0.0, 0.0));
        let d = b.add_port("d", ccs_geom::Point2::new(1.2, 0.8));
        b.add_channel(s, d, Bandwidth::from_gbps(1.0)).unwrap();
        let g = b.build().unwrap();
        let r = crate::synthesis::Synthesizer::new(&g, &lib).run().unwrap();
        // Manhattan 2.0 mm → ⌊2.0/0.6⌋ = 3 repeaters.
        assert_eq!(r.implementation.repeater_count(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one segment")]
    fn zero_segments_panics() {
        let _ = Technology::um_180().segmented_delay_ps(1.0, 0);
    }

    fn spread_instance() -> crate::constraint::ConstraintGraph {
        // Channels from 1 mm to 40 mm so both regimes appear.
        let mut b = crate::constraint::ConstraintGraph::builder(ccs_geom::Norm::Manhattan);
        for (i, len) in [1.0, 4.0, 12.0, 25.0, 40.0].iter().enumerate() {
            let s = b.add_port(format!("s{i}"), ccs_geom::Point2::new(0.0, i as f64));
            let t = b.add_port(format!("t{i}"), ccs_geom::Point2::new(*len, i as f64));
            b.add_channel(s, t, Bandwidth::from_mbps(100.0)).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn timing_report_splits_regimes() {
        let t = Technology::um_180();
        let g = spread_instance();
        let r = t.timing_report(&g);
        assert_eq!(r.channels.len(), 5);
        // Short channels are single-cycle; the 40 mm one cannot be.
        assert!(r.channels[0].single_cycle);
        assert!(!r.channels[4].single_cycle);
        assert!(r.channels[4].latches_needed >= 1);
        // Latches are exactly ⌈delay/clock⌉ − 1.
        for c in &r.channels {
            let cycles = (c.delay_ps / t.clock_period_ps).ceil().max(1.0) as u32;
            assert_eq!(c.latches_needed, cycles - 1);
            assert_eq!(c.single_cycle, cycles == 1);
        }
    }

    #[test]
    fn dsm_nodes_have_fewer_single_cycle_wires() {
        // The paper's conclusion, quantified: at 0.13 µm fewer channels
        // are single-cycle and more latches are needed.
        let g = spread_instance();
        let old = Technology::um_180().timing_report(&g);
        let new = Technology::um_130().timing_report(&g);
        assert!(new.single_cycle_fraction() <= old.single_cycle_fraction());
        assert!(new.total_latches() >= old.total_latches());
    }

    #[test]
    fn empty_graph_is_all_single_cycle() {
        let g = crate::constraint::ConstraintGraph::builder(ccs_geom::Norm::Manhattan)
            .build()
            .unwrap();
        let r = Technology::um_180().timing_report(&g);
        assert_eq!(r.single_cycle_fraction(), 1.0);
        assert_eq!(r.total_latches(), 0);
    }
}

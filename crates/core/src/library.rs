//! The communication library (paper Def. 2.2).
//!
//! A library is a set of **links** — each with a bandwidth, a maximum
//! span, and a cost model — plus **communication nodes** (repeaters,
//! muxes, demuxes, switches) with fixed costs. Two cost models cover the
//! paper's two domains:
//!
//! * [`LinkCost::PerLength`] — e.g. the WAN example's radio
//!   (`$2 × meter`) and optical (`$4 × meter`) links, which can span any
//!   distance at a price linear in length;
//! * [`LinkCost::PerSegment`] — e.g. the on-chip example's metal wire of
//!   critical length `l_crit`, where cost is counted per instantiated
//!   segment (and the interesting cost is the repeaters between
//!   segments).

use crate::error::LibraryError;
use crate::units::Bandwidth;
use std::fmt;

/// Identifier of a link within a [`Library`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LinkId(pub u32);

impl LinkId {
    /// The id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

/// The kinds of communication nodes (paper Section 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// Receives and re-transmits one stream: used for arc segmentation.
    Repeater,
    /// Merges multiple incoming links into one outgoing link.
    Mux,
    /// Splits one incoming link into multiple outgoing links.
    Demux,
    /// A general routing element (acts as a repeater and can join links).
    Switch,
}

impl NodeKind {
    /// All node kinds, in declaration order.
    pub const ALL: [NodeKind; 4] = [
        NodeKind::Repeater,
        NodeKind::Mux,
        NodeKind::Demux,
        NodeKind::Switch,
    ];

    fn slot(self) -> usize {
        match self {
            NodeKind::Repeater => 0,
            NodeKind::Mux => 1,
            NodeKind::Demux => 2,
            NodeKind::Switch => 3,
        }
    }
}

impl fmt::Display for NodeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            NodeKind::Repeater => "repeater",
            NodeKind::Mux => "mux",
            NodeKind::Demux => "demux",
            NodeKind::Switch => "switch",
        };
        f.write_str(s)
    }
}

/// How a link's cost scales.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LinkCost {
    /// Cost is `rate × length` for whatever length the instance spans
    /// (up to the link's maximum).
    PerLength(f64),
    /// Each instantiated segment costs a flat amount regardless of the
    /// spanned length (e.g. a standard-cell wire segment).
    PerSegment(f64),
}

/// How segmentation counts repeaters for a span of length `d` over a link
/// of maximum length `ℓ`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SegmentationPolicy {
    /// `⌈d/ℓ⌉` segments, so `⌈d/ℓ⌉ − 1` repeaters: a repeater only where
    /// two segments meet. The natural reading of Def. 2.7.
    #[default]
    MinimalRepeaters,
    /// `⌊d/ℓ⌋` repeaters — one every full critical length, matching the
    /// paper's on-chip cost formula `⌊(|Δx|+|Δy|)/l_crit⌋` (Section 4,
    /// Example 2). Differs from `MinimalRepeaters` only when `d` is an
    /// exact multiple of `ℓ`... and by one elsewhere.
    RepeaterPerCriticalLength,
}

/// A communication link specification (Def. 2.2).
///
/// # Examples
///
/// ```
/// use ccs_core::library::{Link, LinkCost};
/// use ccs_core::units::Bandwidth;
///
/// // The paper's WAN radio link: 11 Mb/s, any length, $2 per metre —
/// // with kilometre coordinates that is $2000 per km.
/// let radio = Link::per_length("radio", Bandwidth::from_mbps(11.0), 2000.0);
/// assert_eq!(radio.cost_of_span(3.0), 6000.0);
///
/// // An on-chip wire of critical length 0.6 mm, costed per segment.
/// let wire = Link::fixed_length("wire", Bandwidth::from_gbps(10.0), 0.6, 0.0);
/// assert_eq!(wire.max_length, 0.6);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Link {
    /// Human-readable name.
    pub name: String,
    /// The fastest channel one instance can carry, `b(l)`.
    pub bandwidth: Bandwidth,
    /// The longest channel one instance can span, `d(l)`; use
    /// [`f64::INFINITY`] for unbounded media (priced per length).
    pub max_length: f64,
    /// The cost model, `c(l)`.
    pub cost: LinkCost,
}

impl Link {
    /// An unbounded-length link priced per unit length.
    pub fn per_length(name: impl Into<String>, bandwidth: Bandwidth, rate: f64) -> Self {
        Link {
            name: name.into(),
            bandwidth,
            max_length: f64::INFINITY,
            cost: LinkCost::PerLength(rate),
        }
    }

    /// A length-capped link priced per unit length.
    pub fn per_length_capped(
        name: impl Into<String>,
        bandwidth: Bandwidth,
        max_length: f64,
        rate: f64,
    ) -> Self {
        Link {
            name: name.into(),
            bandwidth,
            max_length,
            cost: LinkCost::PerLength(rate),
        }
    }

    /// A fixed-length link (e.g. a wire of the critical length) with a
    /// flat per-segment cost.
    pub fn fixed_length(
        name: impl Into<String>,
        bandwidth: Bandwidth,
        max_length: f64,
        cost_per_segment: f64,
    ) -> Self {
        Link {
            name: name.into(),
            bandwidth,
            max_length,
            cost: LinkCost::PerSegment(cost_per_segment),
        }
    }

    /// Cost of one instance of this link spanning `length`.
    ///
    /// # Panics
    ///
    /// Panics if `length` exceeds [`max_length`](Self::max_length) beyond
    /// float tolerance — segmentation should have been applied first.
    pub fn cost_of_span(&self, length: f64) -> f64 {
        assert!(
            length <= self.max_length * (1.0 + 1e-9) || self.max_length.is_infinite(),
            "span {length} exceeds link max length {}",
            self.max_length
        );
        match self.cost {
            LinkCost::PerLength(rate) => rate * length,
            LinkCost::PerSegment(c) => c,
        }
    }

    /// An upper estimate of this link's cost per unit length when carrying
    /// one lane — used as the linear weight in hub-placement problems.
    ///
    /// For per-length links this is the rate; for per-segment links the
    /// flat cost is amortized over the maximum span.
    pub fn rate_per_length(&self) -> f64 {
        match self.cost {
            LinkCost::PerLength(rate) => rate,
            LinkCost::PerSegment(c) => {
                if self.max_length.is_finite() && self.max_length > 0.0 {
                    c / self.max_length
                } else {
                    c
                }
            }
        }
    }
}

/// A validated communication library: links plus node costs.
///
/// Build one with [`Library::builder`].
#[derive(Debug, Clone, PartialEq)]
pub struct Library {
    links: Vec<Link>,
    nodes: [Option<f64>; 4],
    segmentation: SegmentationPolicy,
}

impl Library {
    /// Starts building a library.
    pub fn builder() -> LibraryBuilder {
        LibraryBuilder {
            links: Vec::new(),
            nodes: [None; 4],
            segmentation: SegmentationPolicy::default(),
        }
    }

    /// The links, in insertion order.
    pub fn links(&self) -> impl Iterator<Item = (LinkId, &Link)> + '_ {
        self.links
            .iter()
            .enumerate()
            .map(|(i, l)| (LinkId(i as u32), l))
    }

    /// The link record for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a link of this library.
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.index()]
    }

    /// Number of links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// The cost of a node kind, or `None` when the library lacks it.
    pub fn node_cost(&self, kind: NodeKind) -> Option<f64> {
        self.nodes[kind.slot()]
    }

    /// Whether the library offers the node kind at all.
    pub fn has_node(&self, kind: NodeKind) -> bool {
        self.nodes[kind.slot()].is_some()
    }

    /// The repeater-counting policy for segmentation.
    pub fn segmentation(&self) -> SegmentationPolicy {
        self.segmentation
    }

    /// The largest link bandwidth, `max_{l∈L} b(l)` — the quantity in
    /// Theorem 3.2.
    pub fn max_bandwidth(&self) -> Bandwidth {
        self.links
            .iter()
            .map(|l| l.bandwidth)
            .fold(Bandwidth::ZERO, |a, b| if b > a { b } else { a })
    }
}

/// Incremental builder for [`Library`].
#[derive(Debug, Clone)]
pub struct LibraryBuilder {
    links: Vec<Link>,
    nodes: [Option<f64>; 4],
    segmentation: SegmentationPolicy,
}

impl LibraryBuilder {
    /// Adds a link.
    #[must_use]
    pub fn link(mut self, link: Link) -> Self {
        self.links.push(link);
        self
    }

    /// Sets the cost of a node kind.
    #[must_use]
    pub fn node(mut self, kind: NodeKind, cost: f64) -> Self {
        // Duplicate detection happens in build() so the builder chain
        // stays infallible.
        if self.nodes[kind.slot()].is_some() {
            self.nodes[kind.slot()] = Some(f64::NAN); // flag duplicate
        } else {
            self.nodes[kind.slot()] = Some(cost);
        }
        self
    }

    /// Selects the repeater-counting policy (default:
    /// [`SegmentationPolicy::MinimalRepeaters`]).
    #[must_use]
    pub fn segmentation(mut self, policy: SegmentationPolicy) -> Self {
        self.segmentation = policy;
        self
    }

    /// Validates and finalizes the library.
    ///
    /// # Errors
    ///
    /// * [`LibraryError::NoLinks`] — no link was added;
    /// * [`LibraryError::ZeroBandwidthLink`] / [`LibraryError::BadLength`] /
    ///   [`LibraryError::BadCost`] — malformed figures;
    /// * [`LibraryError::DuplicateNode`] — a node kind was set twice.
    pub fn build(self) -> Result<Library, LibraryError> {
        if self.links.is_empty() {
            return Err(LibraryError::NoLinks);
        }
        for l in &self.links {
            if l.bandwidth.is_zero() {
                return Err(LibraryError::ZeroBandwidthLink(l.name.clone()));
            }
            // NaN max lengths must fail too, hence the negated compare.
            if l.max_length.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
                return Err(LibraryError::BadLength(l.name.clone()));
            }
            let rate = match l.cost {
                LinkCost::PerLength(r) => r,
                LinkCost::PerSegment(c) => c,
            };
            if !rate.is_finite() || rate < 0.0 {
                return Err(LibraryError::BadCost(format!("link {:?}", l.name)));
            }
        }
        for kind in NodeKind::ALL {
            if let Some(c) = self.nodes[kind.slot()] {
                if c.is_nan() {
                    return Err(LibraryError::DuplicateNode(kind));
                }
                if !c.is_finite() || c < 0.0 {
                    return Err(LibraryError::BadCost(format!("node {kind}")));
                }
            }
        }
        Ok(Library {
            links: self.links,
            nodes: self.nodes,
            segmentation: self.segmentation,
        })
    }
}

/// The paper's WAN library (Section 4, Example 1): an 11 Mb/s radio link
/// at $2/m and a 1 Gb/s optical link at $4/m, with free repeaters and
/// mux/demux nodes (the paper prices only the links). Coordinates are in
/// kilometres, so the per-length rates are $2000/km and $4000/km.
pub fn wan_paper_library() -> Library {
    Library::builder()
        .link(Link::per_length(
            "radio",
            Bandwidth::from_mbps(11.0),
            2000.0,
        ))
        .link(Link::per_length(
            "optical",
            Bandwidth::from_gbps(1.0),
            4000.0,
        ))
        .node(NodeKind::Repeater, 0.0)
        .node(NodeKind::Mux, 0.0)
        .node(NodeKind::Demux, 0.0)
        .build()
        .expect("static library is valid")
}

/// The paper's on-chip library (Section 4, Example 2): a single metal
/// wire of the critical length `l_crit` and three nodes — an inverter
/// (repeater, cost 1 so total cost counts repeaters) and free optimally
/// sized mux/demux. Coordinates in millimetres; wire bandwidth is "one
/// clock-rate signal", modelled as 1 Gb/s with every channel demanding
/// at most that.
pub fn soc_paper_library(l_crit_mm: f64) -> Library {
    Library::builder()
        .link(Link::fixed_length(
            "wire",
            Bandwidth::from_gbps(1.0),
            l_crit_mm,
            0.0,
        ))
        .node(NodeKind::Repeater, 1.0)
        .node(NodeKind::Mux, 0.0)
        .node(NodeKind::Demux, 0.0)
        .segmentation(SegmentationPolicy::RepeaterPerCriticalLength)
        .build()
        .expect("static library is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_paper_libraries() {
        let wan = wan_paper_library();
        assert_eq!(wan.link_count(), 2);
        assert_eq!(wan.max_bandwidth(), Bandwidth::from_gbps(1.0));
        assert_eq!(wan.node_cost(NodeKind::Repeater), Some(0.0));
        assert!(!wan.has_node(NodeKind::Switch));
        assert_eq!(wan.segmentation(), SegmentationPolicy::MinimalRepeaters);

        let soc = soc_paper_library(0.6);
        assert_eq!(soc.link_count(), 1);
        assert_eq!(soc.node_cost(NodeKind::Repeater), Some(1.0));
        assert_eq!(
            soc.segmentation(),
            SegmentationPolicy::RepeaterPerCriticalLength
        );
    }

    #[test]
    fn cost_of_span_models() {
        let radio = Link::per_length("r", Bandwidth::from_mbps(11.0), 2.0);
        assert_eq!(radio.cost_of_span(100.0), 200.0);
        assert_eq!(radio.rate_per_length(), 2.0);

        let wire = Link::fixed_length("w", Bandwidth::from_gbps(1.0), 0.5, 3.0);
        assert_eq!(wire.cost_of_span(0.4), 3.0);
        assert_eq!(wire.cost_of_span(0.1), 3.0);
        assert_eq!(wire.rate_per_length(), 6.0);
    }

    #[test]
    #[should_panic(expected = "exceeds link max length")]
    fn span_over_max_panics() {
        let wire = Link::fixed_length("w", Bandwidth::from_gbps(1.0), 0.5, 3.0);
        let _ = wire.cost_of_span(0.6);
    }

    #[test]
    fn empty_library_rejected() {
        assert_eq!(Library::builder().build(), Err(LibraryError::NoLinks));
    }

    #[test]
    fn zero_bandwidth_link_rejected() {
        let r = Library::builder()
            .link(Link::per_length("dead", Bandwidth::ZERO, 1.0))
            .build();
        assert_eq!(r, Err(LibraryError::ZeroBandwidthLink("dead".into())));
    }

    #[test]
    fn bad_length_rejected() {
        let r = Library::builder()
            .link(Link::per_length_capped(
                "bad",
                Bandwidth::from_mbps(1.0),
                0.0,
                1.0,
            ))
            .build();
        assert_eq!(r, Err(LibraryError::BadLength("bad".into())));
    }

    #[test]
    fn negative_cost_rejected() {
        let r = Library::builder()
            .link(Link::per_length("x", Bandwidth::from_mbps(1.0), -1.0))
            .build();
        assert!(matches!(r, Err(LibraryError::BadCost(_))));
        let r = Library::builder()
            .link(Link::per_length("x", Bandwidth::from_mbps(1.0), 1.0))
            .node(NodeKind::Mux, -5.0)
            .build();
        assert!(matches!(r, Err(LibraryError::BadCost(_))));
    }

    #[test]
    fn duplicate_node_rejected() {
        let r = Library::builder()
            .link(Link::per_length("x", Bandwidth::from_mbps(1.0), 1.0))
            .node(NodeKind::Mux, 1.0)
            .node(NodeKind::Mux, 2.0)
            .build();
        assert_eq!(r, Err(LibraryError::DuplicateNode(NodeKind::Mux)));
    }

    #[test]
    fn link_iteration_is_stable() {
        let lib = wan_paper_library();
        let names: Vec<&str> = lib.links().map(|(_, l)| l.name.as_str()).collect();
        assert_eq!(names, vec!["radio", "optical"]);
        assert_eq!(lib.link(LinkId(1)).name, "optical");
    }

    #[test]
    fn node_kind_display() {
        assert_eq!(NodeKind::Repeater.to_string(), "repeater");
        assert_eq!(NodeKind::Mux.to_string(), "mux");
        assert_eq!(NodeKind::Demux.to_string(), "demux");
        assert_eq!(NodeKind::Switch.to_string(), "switch");
    }
}

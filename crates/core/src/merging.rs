//! Merge-candidate enumeration with the paper's pruning results
//! (Lemmas 3.1/3.2, Theorems 3.1/3.2; the algorithm of Fig. 2).
//!
//! A *k-way merging* implements k constraint arcs with a shared common
//! path. Enumerating all `2^|A|` subsets is hopeless, so the paper prunes
//! with sufficient conditions that a subset can **not** be profitably
//! merged:
//!
//! * **Lemma 3.1** — a pair `{a, a′}` with
//!   `Γ(a, a′) ≤ Δ(a, a′)` (no positive *slack*) is not 2-way mergeable;
//! * **Lemma 3.2** — a k-subset whose slacks against a pivot arc sum to
//!   `≤ 0` is not k-way mergeable;
//! * **Theorem 3.1** — an arc in no surviving k-subset can be dropped
//!   from all larger subsets (the "column removal" of Fig. 2);
//! * **Theorem 3.2** — a subset whose total bandwidth exceeds
//!   `max_l b(l) + min_j b(aⱼ)` cannot share any library link as its
//!   common path.
//!
//! ### Faithfulness note (pivot choice)
//!
//! Lemma 3.2 singles out one arc `a_k`. Applied with *every* member as
//! pivot the WAN example yields 13/18/16/6 candidates per k; the paper
//! reports **13/21/16/5**. The k = 2..4 counts reproduce exactly when the
//! lemma is applied once per subset with the **highest-index arc** as
//! pivot — the natural reading of Fig. 2's incremental loop — so that is
//! the default ([`MergePruneRule::LastArcPivot`]); the stricter
//! [`MergePruneRule::AnyPivot`] is available as a config option. Both are
//! sound (each application is a sufficient non-mergeability condition).
//!
//! ### Parallelism & determinism
//!
//! Each level's extension and prune sweeps are chunked over a
//! [`ccs_exec::Executor`] (see [`enumerate_with`]). Determinism is by
//! construction: chunks are contiguous index ranges emitted back in
//! input order (slot-addressed), per-worker [`LevelStats`] partials are
//! [merged](LevelStats::merge) so every counter equals the serial count
//! exactly, and each level's survivors are generated in canonical
//! lexicographic order before the Theorem 3.1 closure runs.
//! `enumerate_with` therefore returns **bit-identical** results for
//! every thread count; [`enumerate`] is the serial special case.
//!
//! ### The bitset kernel
//!
//! The hot loops run on flat buffers (see [`crate::bits`]): the level-2
//! sweep derives each chunk's pairs arithmetically from the triangular
//! index instead of materializing a pair list; the surviving-pair graph
//! is stored as word-packed [`NeighborMasks`] rows so clique extension
//! is an AND of the members' rows iterated with `trailing_zeros`; and
//! each level's subsets live in one flat `Vec<u32>` (k entries per
//! subset) rather than a `Vec<Vec<usize>>` of per-subset allocations.
//! The public [`MergeEnumeration`] shape is unchanged — survivors are
//! unflattened once per level on the way out.

use crate::bits::{pair_at, pair_count, NeighborMasks};
use crate::constraint::ConstraintGraph;
use crate::library::Library;
use crate::matrices::DistanceMatrices;
use crate::units::Bandwidth;
use ccs_covering::bitset::BitSet;
use ccs_exec::{chunk_ranges, ExecStats, Executor};
use ccs_obs::ledger::{self, Cause, DecisionEvent};

/// Which pivots Lemma 3.2 is evaluated with (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MergePruneRule {
    /// One application per subset, pivot = highest-index arc (paper-count
    /// faithful; default).
    #[default]
    LastArcPivot,
    /// Prune when *any* member as pivot satisfies the lemma (strictly
    /// stronger pruning).
    AnyPivot,
}

/// How candidate subsets are enumerated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EnumerationStrategy {
    /// Pick [`Exhaustive`](Self::Exhaustive) for `|A| ≤ 14`, otherwise
    /// [`PairwiseCliques`](Self::PairwiseCliques).
    #[default]
    Auto,
    /// Test every k-subset of the active arcs (paper-faithful; the WAN
    /// candidate counts are produced under this strategy).
    Exhaustive,
    /// Only grow subsets that are cliques in the surviving-pair graph —
    /// a scalable restriction (merging arcs that are pairwise
    /// non-mergeable is never profitable in practice).
    PairwiseCliques,
}

/// Configuration for merge-candidate enumeration.
#[derive(Debug, Clone, PartialEq)]
pub struct MergeConfig {
    /// Pivot rule for Lemma 3.2.
    pub prune_rule: MergePruneRule,
    /// Subset enumeration strategy.
    pub strategy: EnumerationStrategy,
    /// Largest merging order considered (`None` = up to `|A|`).
    pub max_k: Option<usize>,
    /// Apply the Lemma 3.1/3.2 geometric prunes (disable only for
    /// ablation studies — every subset then survives to the costing
    /// stage).
    pub geometry_prune: bool,
    /// Apply the Theorem 3.2 bandwidth prune.
    pub bandwidth_prune: bool,
    /// Hard cap on the number of subsets *examined* per level; exceeding
    /// it stops enumeration and is recorded in
    /// [`MergeStats::truncated_at_k`] (never silent).
    pub max_subsets_per_level: usize,
    /// Gate hub-placement solves with a cheap geometric cost lower
    /// bound ([`crate::placement::merge_cost_lower_bound`]): a subset
    /// whose bound already meets the dominance threshold (the sum of
    /// its members' point-to-point costs) is dropped without running
    /// the Weber/two-hub iteration. Sound — the gated candidates are
    /// exactly ones the dominance filter would discard after the solve
    /// (Def. 2.5) — so results are identical; only
    /// `placement.solves_skipped` accounting changes. Disable via
    /// `--no-lb-gate` to measure the gate or to debug it.
    pub lb_gate: bool,
}

impl Default for MergeConfig {
    fn default() -> Self {
        MergeConfig {
            prune_rule: MergePruneRule::default(),
            strategy: EnumerationStrategy::default(),
            max_k: None,
            geometry_prune: true,
            bandwidth_prune: true,
            max_subsets_per_level: 2_000_000,
            lb_gate: true,
        }
    }
}

/// Enumeration output: surviving subsets per merge order, plus statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct MergeEnumeration {
    /// `subsets[i]` holds the surviving subsets of order `k = i + 2`,
    /// each a sorted vector of arc indices.
    pub subsets_by_k: Vec<Vec<Vec<usize>>>,
    /// Statistics of the run.
    pub stats: MergeStats,
}

/// Per-level (per merge order k) enumeration statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LevelStats {
    /// The merge order this level enumerated.
    pub k: usize,
    /// Subsets generated and tested at this level.
    pub examined: u64,
    /// Subsets killed by Lemma 3.1 (k = 2) / Lemma 3.2 (k ≥ 3).
    pub geometry_pruned: u64,
    /// Subsets killed by the Theorem 3.2 bandwidth condition.
    pub bandwidth_pruned: u64,
    /// Subsets that survived to the costing stage.
    pub survivors: u64,
    /// Arcs removed by the Theorem 3.1 monotone closure after this
    /// level.
    pub deactivated: u64,
}

impl LevelStats {
    /// Accumulates a per-worker partial into `self` (same level `k`).
    ///
    /// Every counter is a plain sum, so merging worker partials in any
    /// order reproduces the serial totals exactly.
    ///
    /// # Panics
    ///
    /// Panics if the two partials describe different levels.
    pub fn merge(&mut self, other: &LevelStats) {
        assert_eq!(self.k, other.k, "merging LevelStats of different levels");
        self.examined += other.examined;
        self.geometry_pruned += other.geometry_pruned;
        self.bandwidth_pruned += other.bandwidth_pruned;
        self.survivors += other.survivors;
        self.deactivated += other.deactivated;
    }
}

/// Statistics from one enumeration run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MergeStats {
    /// `(k, surviving count)` per level, in increasing k.
    pub counts: Vec<(usize, usize)>,
    /// For each arc, the level k after which Theorem 3.1 removed it
    /// (`None` = never removed).
    pub deactivated_at: Vec<Option<usize>>,
    /// Subsets pruned by the Lemma 3.1/3.2 geometric condition.
    pub geometry_pruned: u64,
    /// Subsets pruned by the Theorem 3.2 bandwidth condition.
    pub bandwidth_pruned: u64,
    /// The level at which enumeration hit
    /// [`MergeConfig::max_subsets_per_level`], if any.
    pub truncated_at_k: Option<usize>,
    /// Per-level breakdown. Unlike [`counts`](Self::counts), a trailing
    /// level that examined subsets but kept none is retained here, so
    /// the per-level prune counts always sum to the aggregates.
    pub levels: Vec<LevelStats>,
    /// Executor telemetry of the run (tasks, steals, busy time).
    /// Everything else in this struct is identical for every thread
    /// count; this field is scheduling-dependent and excluded from
    /// determinism comparisons.
    pub exec: ExecStats,
}

impl MergeEnumeration {
    /// All surviving subsets across every order, flattened.
    pub fn all_subsets(&self) -> impl Iterator<Item = &Vec<usize>> + '_ {
        self.subsets_by_k.iter().flatten()
    }

    /// Total number of surviving merge candidates.
    pub fn candidate_count(&self) -> usize {
        self.subsets_by_k.iter().map(Vec::len).sum()
    }
}

/// Lemma 3.1: `true` when the pair `{i, j}` is provably not 2-way
/// mergeable (`Γ ≤ Δ`, i.e. slack `ε ≤ 0`).
pub fn pair_pruned(m: &DistanceMatrices, i: usize, j: usize) -> bool {
    m.slack(i, j) <= 1e-12
}

/// Lemma 3.2 with a given pivot: `true` when
/// `Σ_{i ≠ pivot} ε(aᵢ, a_pivot) ≤ 0`, proving the subset not k-way
/// mergeable.
///
/// # Panics
///
/// Panics if `pivot` is not a member of `subset`.
pub fn subset_pruned_with_pivot(m: &DistanceMatrices, subset: &[usize], pivot: usize) -> bool {
    assert!(subset.contains(&pivot), "pivot must belong to the subset");
    let total: f64 = subset
        .iter()
        .filter(|&&i| i != pivot)
        .map(|&i| m.slack(i, pivot))
        .sum();
    total <= 1e-12
}

/// Applies Lemma 3.2 under the configured pivot rule.
pub fn subset_pruned(m: &DistanceMatrices, subset: &[usize], rule: MergePruneRule) -> bool {
    match rule {
        MergePruneRule::LastArcPivot => {
            let pivot = *subset.iter().max().expect("non-empty subset");
            subset_pruned_with_pivot(m, subset, pivot)
        }
        MergePruneRule::AnyPivot => subset
            .iter()
            .any(|&p| subset_pruned_with_pivot(m, subset, p)),
    }
}

/// Theorem 3.2: `true` when the subset's total bandwidth proves it cannot
/// share a common path: `Σ b(aᵢ) ≥ max_l b(l) + min_j b(aⱼ)`.
pub fn bandwidth_pruned(graph: &ConstraintGraph, library: &Library, subset: &[usize]) -> bool {
    let total: Bandwidth = subset
        .iter()
        .map(|&i| graph.arc(crate::constraint::ArcId(i as u32)).bandwidth)
        .sum();
    let min = subset
        .iter()
        .map(|&i| graph.arc(crate::constraint::ArcId(i as u32)).bandwidth)
        .fold(None::<Bandwidth>, |acc, b| match acc {
            Some(a) if a < b => Some(a),
            _ => Some(b),
        })
        .unwrap_or(Bandwidth::ZERO);
    total.as_mbps() >= library.max_bandwidth().as_mbps() + min.as_mbps() - 1e-9
}

/// Lemma 3.2 on a flat `u32` subset — the same floats in the same order
/// as [`subset_pruned`], without building a `Vec<usize>` per subset.
fn subset_pruned_u32(m: &DistanceMatrices, subset: &[u32], rule: MergePruneRule) -> bool {
    match rule {
        MergePruneRule::LastArcPivot => {
            let pivot = *subset.iter().max().expect("non-empty subset") as usize;
            slack_sum_pruned(m, subset, pivot)
        }
        MergePruneRule::AnyPivot => subset
            .iter()
            .any(|&p| slack_sum_pruned(m, subset, p as usize)),
    }
}

/// `Σ_{i ≠ pivot} ε(aᵢ, a_pivot) ≤ 0` with the summation in subset
/// order, matching [`subset_pruned_with_pivot`] bit-for-bit.
fn slack_sum_pruned(m: &DistanceMatrices, subset: &[u32], pivot: usize) -> bool {
    let total: f64 = subset
        .iter()
        .filter(|&&i| i as usize != pivot)
        .map(|&i| m.slack(i as usize, pivot))
        .sum();
    total <= 1e-12
}

/// Theorem 3.2 against precomputed per-arc bandwidths — the same sums
/// in the same order as [`bandwidth_pruned`], without the per-call arc
/// lookups and `max_bandwidth` fold.
fn bandwidth_pruned_fast(bws: &[Bandwidth], max_bw_mbps: f64, subset: &[u32]) -> bool {
    let total: Bandwidth = subset.iter().map(|&i| bws[i as usize]).sum();
    let min = subset
        .iter()
        .map(|&i| bws[i as usize])
        .fold(None::<Bandwidth>, |acc, b| match acc {
            Some(a) if a < b => Some(a),
            _ => Some(b),
        })
        .unwrap_or(Bandwidth::ZERO);
    total.as_mbps() >= max_bw_mbps + min.as_mbps() - 1e-9
}

/// Unflattens a level arena (`k` entries per subset) into the public
/// `Vec<Vec<usize>>` shape — one conversion per level, on the way out.
fn unflatten(flat: &[u32], k: usize) -> Vec<Vec<usize>> {
    flat.chunks_exact(k)
        .map(|c| c.iter().map(|&a| a as usize).collect())
        .collect()
}

/// Debug-build invariant check: the extension kernel emits subsets in
/// lexicographic order by construction, so no level ever needs a sort.
fn is_lex_sorted(flat: &[u32], k: usize) -> bool {
    flat.chunks_exact(k)
        .zip(flat.chunks_exact(k).skip(1))
        .all(|(a, b)| a <= b)
}

/// Enumerates all surviving merge candidates of `graph` under `config`
/// (the `GenerateCandidateArcImplementations` loop of Fig. 2, minus the
/// point-to-point singletons which [`crate::p2p`] provides), serially.
///
/// Equivalent to [`enumerate_with`] on a single-threaded executor — and,
/// by the determinism guarantee, to `enumerate_with` on *any* executor.
pub fn enumerate(
    graph: &ConstraintGraph,
    library: &Library,
    matrices: &DistanceMatrices,
    config: &MergeConfig,
) -> MergeEnumeration {
    enumerate_with(graph, library, matrices, config, &Executor::serial())
}

/// [`enumerate`] with the level sweeps fanned out over `exec`.
///
/// The result is bit-identical for every thread count: sweeps emit into
/// index-ordered slots, per-worker [`LevelStats`] are merged (sums), and
/// survivors are canonically re-sorted before Theorem 3.1 deactivation.
pub fn enumerate_with(
    graph: &ConstraintGraph,
    library: &Library,
    matrices: &DistanceMatrices,
    config: &MergeConfig,
    exec: &Executor,
) -> MergeEnumeration {
    let n = graph.arc_count();
    let mut stats = MergeStats {
        deactivated_at: vec![None; n],
        ..MergeStats::default()
    };
    let mut subsets_by_k: Vec<Vec<Vec<usize>>> = Vec::new();
    if n < 2 {
        return MergeEnumeration {
            subsets_by_k,
            stats,
        };
    }
    let strategy = match config.strategy {
        EnumerationStrategy::Auto => {
            if n <= 14 {
                EnumerationStrategy::Exhaustive
            } else {
                EnumerationStrategy::PairwiseCliques
            }
        }
        s => s,
    };
    let max_k = config.max_k.unwrap_or(n).min(n);
    if max_k < 2 {
        // Merging disabled outright (`max_k <= 1`): every arc stays
        // point-to-point, mirroring the `n < 2` early return.
        return MergeEnumeration {
            subsets_by_k,
            stats,
        };
    }
    let sweep_parts = exec.threads() * 8;

    // Per-arc bandwidths and the library's best link rate, hoisted out
    // of the Theorem 3.2 check (same values, same summation order as
    // the per-call lookups they replace).
    let bws: Vec<Bandwidth> = (0..n)
        .map(|i| graph.arc(crate::constraint::ArcId(i as u32)).bandwidth)
        .collect();
    let max_bw_mbps = library.max_bandwidth().as_mbps();

    // ---- Level k = 2 ---------------------------------------------------
    // Chunked Lemma 3.1 / Theorem 3.2 sweep over all unordered pairs.
    // Each chunk unranks its first pair from the triangular index and
    // advances sequentially — no materialized pair list. The profile
    // scope stays on this thread for the whole level (per-chunk scopes
    // would make call counts depend on the chunk count, which is a
    // function of the thread count).
    let profile_level = ccs_obs::profile::scope("pairs");
    // Hoisted ledger check: sweeps build no event when provenance
    // recording is off (the default).
    let ledger_on = ledger::enabled();
    let chunks = chunk_ranges(pair_count(n), sweep_parts);
    let (parts, sweep_stats) = exec.par_map_stats(&chunks, |_, &(s, e)| {
        let mut ls = LevelStats {
            k: 2,
            ..LevelStats::default()
        };
        let mut surviving: Vec<u32> = Vec::new();
        let (mut i, mut j) = pair_at(n, s);
        for _ in s..e {
            ls.examined += 1;
            if config.geometry_prune && pair_pruned(matrices, i, j) {
                ls.geometry_pruned += 1;
                if ledger_on {
                    ledger::emit(DecisionEvent::new(
                        Cause::MergingGeometryPruned,
                        vec![i as u32, j as u32],
                        0.0,
                        0.0,
                        "k=2".to_string(),
                    ));
                }
            } else if config.bandwidth_prune
                && bandwidth_pruned_fast(&bws, max_bw_mbps, &[i as u32, j as u32])
            {
                ls.bandwidth_pruned += 1;
                if ledger_on {
                    ledger::emit(DecisionEvent::new(
                        Cause::MergingBandwidthPruned,
                        vec![i as u32, j as u32],
                        bws[i].as_mbps() + bws[j].as_mbps(),
                        max_bw_mbps,
                        "k=2".to_string(),
                    ));
                }
            } else {
                surviving.push(i as u32);
                surviving.push(j as u32);
            }
            j += 1;
            if j == n {
                i += 1;
                j = i + 1;
            }
        }
        (ls, surviving)
    });
    stats.exec.merge(&sweep_stats);
    let mut level = LevelStats {
        k: 2,
        ..LevelStats::default()
    };
    let mut pairs_flat: Vec<u32> = Vec::new();
    let mut masks = NeighborMasks::new(n);
    for (ls, surviving) in parts {
        level.merge(&ls);
        for p in surviving.chunks_exact(2) {
            masks.connect(p[0] as usize, p[1] as usize);
        }
        pairs_flat.extend_from_slice(&surviving);
    }
    stats.geometry_pruned += level.geometry_pruned;
    stats.bandwidth_pruned += level.bandwidth_pruned;
    // The sweep emits pairs in increasing triangular rank, which *is*
    // lexicographic order — the canonical order Theorem 3.1 expects.
    debug_assert!(is_lex_sorted(&pairs_flat, 2));
    let mut active: Vec<bool> = vec![false; n];
    let mut active_mask = BitSet::new(n);
    for &a in &pairs_flat {
        if !active[a as usize] {
            active[a as usize] = true;
            active_mask.insert(a as usize);
        }
    }
    for (a, act) in active.iter().enumerate() {
        if !act {
            stats.deactivated_at[a] = Some(2);
            level.deactivated += 1;
            if ledger_on {
                ledger::emit(DecisionEvent::new(
                    Cause::MergingDeactivated,
                    vec![a as u32],
                    0.0,
                    0.0,
                    "k=2".to_string(),
                ));
            }
        }
    }
    let pair_survivors = pairs_flat.len() / 2;
    level.survivors = pair_survivors as u64;
    stats.counts.push((2, pair_survivors));
    stats.levels.push(level);
    subsets_by_k.push(unflatten(&pairs_flat, 2));
    let mut prev_flat = pairs_flat;
    let mut prev_k = 2usize;
    drop(profile_level);

    // ---- Levels k = 3.. -------------------------------------------------
    for k in 3..=max_k {
        if prev_flat.is_empty() {
            break;
        }
        let _profile_level = ccs_obs::profile::scope_owned(format!("k{k}"));
        let mut truncated = false;

        // Flat candidate arena: k entries per subset.
        let candidates_flat: Vec<u32> = match strategy {
            EnumerationStrategy::Exhaustive => {
                let arcs: Vec<usize> = (0..n).filter(|&a| active[a]).collect();
                k_subsets_flat(&arcs, k, config.max_subsets_per_level, &mut truncated)
            }
            EnumerationStrategy::PairwiseCliques | EnumerationStrategy::Auto => {
                // Extend each surviving (k−1)-clique by a higher-index
                // arc adjacent to all members: AND the members' neighbor
                // rows, mask to active arcs above the last member, pop
                // extensions with trailing_zeros. One scratch set per
                // chunk — chunked over the previous level's arena,
                // flattened back in input order.
                let prev_count = prev_flat.len() / prev_k;
                let chunks = chunk_ranges(prev_count, sweep_parts);
                let (parts, sweep_stats) = exec.par_map_stats(&chunks, |_, &(s, e)| {
                    let mut ext: Vec<u32> = Vec::new();
                    let mut scratch = masks.scratch();
                    for sub in prev_flat[s * prev_k..e * prev_k].chunks_exact(prev_k) {
                        masks.extension_mask(sub, &active_mask, &mut scratch);
                        for j in scratch.iter() {
                            ext.extend_from_slice(sub);
                            ext.push(j as u32);
                        }
                    }
                    ext
                });
                stats.exec.merge(&sweep_stats);
                let mut ext: Vec<u32> = Vec::new();
                'flatten: for part in parts {
                    for t in part.chunks_exact(k) {
                        if ext.len() / k >= config.max_subsets_per_level {
                            truncated = true;
                            break 'flatten;
                        }
                        ext.extend_from_slice(t);
                    }
                }
                ext
            }
        };

        // Chunked Lemma 3.2 / Theorem 3.2 sweep; per-worker LevelStats
        // partials merge to the exact serial counts.
        let n_candidates = candidates_flat.len() / k;
        let examined_cap = n_candidates.min(config.max_subsets_per_level);
        if n_candidates > config.max_subsets_per_level {
            truncated = true;
        }
        let chunks = chunk_ranges(examined_cap, sweep_parts);
        let (parts, sweep_stats) = exec.par_map_stats(&chunks, |_, &(s, e)| {
            let mut ls = LevelStats {
                k,
                ..LevelStats::default()
            };
            let mut surviving: Vec<u32> = Vec::new();
            for subset in candidates_flat[s * k..e * k].chunks_exact(k) {
                ls.examined += 1;
                if config.geometry_prune && subset_pruned_u32(matrices, subset, config.prune_rule) {
                    ls.geometry_pruned += 1;
                    if ledger_on {
                        ledger::emit(DecisionEvent::new(
                            Cause::MergingGeometryPruned,
                            subset.to_vec(),
                            0.0,
                            0.0,
                            format!("k={k}"),
                        ));
                    }
                } else if config.bandwidth_prune && bandwidth_pruned_fast(&bws, max_bw_mbps, subset)
                {
                    ls.bandwidth_pruned += 1;
                    if ledger_on {
                        let total: f64 = subset.iter().map(|&a| bws[a as usize].as_mbps()).sum();
                        ledger::emit(DecisionEvent::new(
                            Cause::MergingBandwidthPruned,
                            subset.to_vec(),
                            total,
                            max_bw_mbps,
                            format!("k={k}"),
                        ));
                    }
                } else {
                    surviving.extend_from_slice(subset);
                }
            }
            (ls, surviving)
        });
        stats.exec.merge(&sweep_stats);
        let mut level = LevelStats {
            k,
            ..LevelStats::default()
        };
        let mut survivors_flat: Vec<u32> = Vec::new();
        for (ls, surviving) in parts {
            level.merge(&ls);
            survivors_flat.extend_from_slice(&surviving);
        }
        stats.geometry_pruned += level.geometry_pruned;
        stats.bandwidth_pruned += level.bandwidth_pruned;
        // Extension of a lex-ordered previous level by ascending j keeps
        // lex order, and the prune sweep only deletes — the canonical
        // order Theorem 3.1 expects holds by construction.
        debug_assert!(is_lex_sorted(&survivors_flat, k));
        if truncated {
            stats.truncated_at_k = Some(k);
            if ledger_on {
                ledger::emit(DecisionEvent::new(
                    Cause::MergingTruncated,
                    Vec::new(),
                    n_candidates as f64,
                    config.max_subsets_per_level as f64,
                    format!("k={k}"),
                ));
            }
        }

        // Theorem 3.1 housekeeping: deactivate arcs in no survivor. A
        // fully empty level ends enumeration and is trimmed below, so it
        // records no per-arc deactivations.
        if !survivors_flat.is_empty() {
            let mut seen = vec![false; n];
            for &a in &survivors_flat {
                seen[a as usize] = true;
            }
            for a in 0..n {
                if active[a] && !seen[a] {
                    active[a] = false;
                    active_mask.remove(a);
                    stats.deactivated_at[a] = Some(k);
                    level.deactivated += 1;
                    if ledger_on {
                        ledger::emit(DecisionEvent::new(
                            Cause::MergingDeactivated,
                            vec![a as u32],
                            0.0,
                            0.0,
                            format!("k={k}"),
                        ));
                    }
                }
            }
        }

        let n_survivors = survivors_flat.len() / k;
        level.survivors = n_survivors as u64;
        stats.counts.push((k, n_survivors));
        stats.levels.push(level);
        subsets_by_k.push(unflatten(&survivors_flat, k));
        prev_flat = survivors_flat;
        prev_k = k;
        if truncated {
            break;
        }
    }

    // Trim trailing empty levels for a tidy result (stats.levels keeps
    // them — see its docs).
    while subsets_by_k.last().is_some_and(Vec::is_empty) {
        subsets_by_k.pop();
        stats.counts.pop();
    }

    emit_level_counters(&stats);
    MergeEnumeration {
        subsets_by_k,
        stats,
    }
}

/// Reports the per-level breakdown to the global [`ccs_obs`] recorder
/// (counter names `merging.k{k}.examined` / `.geometry_pruned` /
/// `.bandwidth_pruned` / `.survivors` / `.deactivated`).
fn emit_level_counters(stats: &MergeStats) {
    if !ccs_obs::enabled() {
        return;
    }
    for l in &stats.levels {
        let k = l.k;
        ccs_obs::counter(&format!("merging.k{k}.examined"), l.examined);
        ccs_obs::counter(&format!("merging.k{k}.geometry_pruned"), l.geometry_pruned);
        ccs_obs::counter(
            &format!("merging.k{k}.bandwidth_pruned"),
            l.bandwidth_pruned,
        );
        ccs_obs::counter(&format!("merging.k{k}.survivors"), l.survivors);
        ccs_obs::counter(&format!("merging.k{k}.deactivated"), l.deactivated);
    }
}

/// All k-subsets of `items` (sorted ascending) in one flat arena (`k`
/// entries per subset), capped at `cap` subsets with the overflow flag
/// set.
fn k_subsets_flat(items: &[usize], k: usize, cap: usize, truncated: &mut bool) -> Vec<u32> {
    let mut out: Vec<u32> = Vec::new();
    if k == 0 || k > items.len() {
        return out;
    }
    let mut idx: Vec<usize> = (0..k).collect();
    loop {
        // Check the cap before pushing: at the top of the loop another
        // subset is always pending, so stopping here returns exactly
        // `cap` subsets with the overflow flag set.
        if out.len() / k >= cap {
            *truncated = true;
            return out;
        }
        out.extend(idx.iter().map(|&i| items[i] as u32));
        // Advance the combination.
        let mut i = k;
        loop {
            if i == 0 {
                return out;
            }
            i -= 1;
            if idx[i] != i + items.len() - k {
                break;
            }
            if i == 0 {
                return out;
            }
        }
        idx[i] += 1;
        for j in (i + 1)..k {
            idx[j] = idx[j - 1] + 1;
        }
    }
}

/// Test shim over [`k_subsets_flat`] in the historical nested shape.
#[cfg(test)]
fn k_subsets(items: &[usize], k: usize, cap: usize, truncated: &mut bool) -> Vec<Vec<usize>> {
    unflatten(&k_subsets_flat(items, k, cap, truncated), k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::ConstraintGraph;
    use crate::library::wan_paper_library;
    use ccs_geom::{Norm, Point2};

    fn mbps(x: f64) -> Bandwidth {
        Bandwidth::from_mbps(x)
    }

    /// Two parallel close channels plus one far-away unrelated channel.
    fn simple_graph() -> ConstraintGraph {
        let mut b = ConstraintGraph::builder(Norm::Euclidean);
        let a0 = b.add_port("s0", Point2::new(0.0, 0.0));
        let a1 = b.add_port("t0", Point2::new(100.0, 0.0));
        let c0 = b.add_port("s1", Point2::new(0.0, 1.0));
        let c1 = b.add_port("t1", Point2::new(100.0, 1.0));
        let f0 = b.add_port("s2", Point2::new(0.0, 500.0));
        let f1 = b.add_port("t2", Point2::new(10.0, 500.0));
        b.add_channel(a0, a1, mbps(10.0)).unwrap();
        b.add_channel(c0, c1, mbps(10.0)).unwrap();
        b.add_channel(f0, f1, mbps(10.0)).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn parallel_pair_survives_far_pair_pruned() {
        let g = simple_graph();
        let m = DistanceMatrices::compute(&g);
        assert!(!pair_pruned(&m, 0, 1)); // parallel channels: big slack
        assert!(pair_pruned(&m, 0, 2)); // far channel: no gain
        assert!(pair_pruned(&m, 1, 2));
    }

    #[test]
    fn enumeration_keeps_only_parallel_pair() {
        let g = simple_graph();
        let m = DistanceMatrices::compute(&g);
        let lib = wan_paper_library();
        let e = enumerate(&g, &lib, &m, &MergeConfig::default());
        assert_eq!(e.subsets_by_k.len(), 1);
        assert_eq!(e.subsets_by_k[0], vec![vec![0, 1]]);
        assert_eq!(e.candidate_count(), 1);
        // Arc 2 deactivated at level 2 (Theorem 3.1 bookkeeping).
        assert_eq!(e.stats.deactivated_at[2], Some(2));
        assert_eq!(e.stats.deactivated_at[0], None);
        assert_eq!(e.stats.counts, vec![(2, 1)]);
    }

    #[test]
    fn pivot_rules_agree_on_pairs() {
        let g = simple_graph();
        let m = DistanceMatrices::compute(&g);
        for (i, j) in [(0, 1), (0, 2), (1, 2)] {
            assert_eq!(
                subset_pruned(&m, &[i, j], MergePruneRule::LastArcPivot),
                subset_pruned(&m, &[i, j], MergePruneRule::AnyPivot)
            );
        }
    }

    #[test]
    fn any_pivot_at_least_as_strong() {
        // Three parallel channels: all pairs mergeable; triple survives
        // both rules.
        let mut b = ConstraintGraph::builder(Norm::Euclidean);
        let mut ids = Vec::new();
        for y in [0.0, 1.0, 2.0] {
            let s = b.add_port("s", Point2::new(0.0, y));
            let t = b.add_port("t", Point2::new(100.0, y));
            ids.push(b.add_channel(s, t, mbps(10.0)).unwrap());
        }
        let g = b.build().unwrap();
        let m = DistanceMatrices::compute(&g);
        let sub = [0usize, 1, 2];
        assert!(!subset_pruned(&m, &sub, MergePruneRule::AnyPivot));
        assert!(!subset_pruned(&m, &sub, MergePruneRule::LastArcPivot));
    }

    #[test]
    fn bandwidth_prune_matches_theorem_3_2() {
        let g = simple_graph(); // three 10 Mb/s channels
        let lib = wan_paper_library(); // max b(l) = 1000 Mb/s
                                       // Σ = 20 or 30 < 1000 + 10: no prune.
        assert!(!bandwidth_pruned(&g, &lib, &[0, 1]));
        assert!(!bandwidth_pruned(&g, &lib, &[0, 1, 2]));
        // A tiny library makes the same subsets prunable.
        let tiny = crate::library::Library::builder()
            .link(crate::library::Link::per_length("t", mbps(12.0), 1.0))
            .build()
            .unwrap();
        assert!(!bandwidth_pruned(&g, &tiny, &[0])); // 10 < 12 + 10
        assert!(!bandwidth_pruned(&g, &tiny, &[0, 1])); // 20 < 22
        assert!(bandwidth_pruned(&g, &tiny, &[0, 1, 2])); // 30 ≥ 22
    }

    #[test]
    fn k_subsets_enumerates_combinations() {
        let mut tr = false;
        let s = k_subsets(&[1, 3, 5, 7], 2, 100, &mut tr);
        assert_eq!(s.len(), 6);
        assert!(!tr);
        assert!(s.contains(&vec![1, 7]));
        let s3 = k_subsets(&[0, 1, 2], 3, 100, &mut tr);
        assert_eq!(s3, vec![vec![0, 1, 2]]);
        let none = k_subsets(&[0, 1], 3, 100, &mut tr);
        assert!(none.is_empty());
    }

    #[test]
    fn k_subsets_cap_sets_flag() {
        let mut tr = false;
        let items: Vec<usize> = (0..10).collect();
        let s = k_subsets(&items, 3, 5, &mut tr);
        assert!(tr);
        assert_eq!(s.len(), 5); // exactly cap, flagged
                                // The kept subsets are the lexicographically first five.
        assert_eq!(s[0], vec![0, 1, 2]);
        assert_eq!(s[4], vec![0, 1, 6]);
    }

    #[test]
    fn k_subsets_exact_cap_is_not_truncated() {
        // C(4, 2) = 6 subsets at cap 6: all returned, no flag.
        let mut tr = false;
        let s = k_subsets(&[0, 1, 2, 3], 2, 6, &mut tr);
        assert_eq!(s.len(), 6);
        assert!(!tr, "a cap equal to the subset count must not flag");
    }

    #[test]
    fn strategies_agree_on_small_instances() {
        let g = simple_graph();
        let m = DistanceMatrices::compute(&g);
        let lib = wan_paper_library();
        let mut cfg = MergeConfig {
            strategy: EnumerationStrategy::Exhaustive,
            ..MergeConfig::default()
        };
        let a = enumerate(&g, &lib, &m, &cfg);
        cfg.strategy = EnumerationStrategy::PairwiseCliques;
        let b = enumerate(&g, &lib, &m, &cfg);
        // On this instance all multi-way sets are cliques, so identical.
        assert_eq!(a.subsets_by_k, b.subsets_by_k);
    }

    #[test]
    fn max_k_caps_order() {
        let mut b = ConstraintGraph::builder(Norm::Euclidean);
        for y in 0..5 {
            let s = b.add_port("s", Point2::new(0.0, y as f64));
            let t = b.add_port("t", Point2::new(100.0, y as f64));
            b.add_channel(s, t, mbps(1.0)).unwrap();
        }
        let g = b.build().unwrap();
        let m = DistanceMatrices::compute(&g);
        let lib = wan_paper_library();
        let cfg = MergeConfig {
            max_k: Some(3),
            ..MergeConfig::default()
        };
        let e = enumerate(&g, &lib, &m, &cfg);
        assert!(e.subsets_by_k.len() <= 2); // k = 2 and k = 3 only
        assert!(e.all_subsets().all(|s| s.len() <= 3));
    }

    #[test]
    fn max_k_one_disables_merging() {
        // `max_k` is the largest merging order *considered*; 1 (or 0)
        // must suppress even the pair level, not just levels >= 3.
        let g = simple_graph();
        let m = DistanceMatrices::compute(&g);
        let uncapped = enumerate(&g, &wan_paper_library(), &m, &MergeConfig::default());
        assert!(uncapped.candidate_count() > 0, "graph must be mergeable");
        for cap in [0, 1] {
            let cfg = MergeConfig {
                max_k: Some(cap),
                ..MergeConfig::default()
            };
            let e = enumerate(&g, &wan_paper_library(), &m, &cfg);
            assert_eq!(e.candidate_count(), 0, "max_k = {cap}");
            assert!(e.stats.counts.is_empty());
        }
    }

    #[test]
    fn single_arc_graph_has_no_candidates() {
        let mut b = ConstraintGraph::builder(Norm::Euclidean);
        let s = b.add_port("s", Point2::new(0.0, 0.0));
        let t = b.add_port("t", Point2::new(1.0, 0.0));
        b.add_channel(s, t, mbps(1.0)).unwrap();
        let g = b.build().unwrap();
        let m = DistanceMatrices::compute(&g);
        let e = enumerate(&g, &wan_paper_library(), &m, &MergeConfig::default());
        assert_eq!(e.candidate_count(), 0);
        assert!(e.stats.counts.is_empty());
    }

    #[test]
    #[should_panic(expected = "pivot must belong")]
    fn foreign_pivot_panics() {
        let g = simple_graph();
        let m = DistanceMatrices::compute(&g);
        let _ = subset_pruned_with_pivot(&m, &[0, 1], 2);
    }

    /// A denser instance: `n` near-parallel channels in one corridor plus
    /// a handful of deliberately un-mergeable outliers.
    fn corridor_graph(n: usize) -> ConstraintGraph {
        let mut b = ConstraintGraph::builder(Norm::Euclidean);
        for i in 0..n {
            let y = (i as f64) * 1.5;
            let s = b.add_port("s", Point2::new((i % 3) as f64, y));
            let t = b.add_port("t", Point2::new(150.0 + (i % 5) as f64, y));
            b.add_channel(s, t, mbps(4.0 + (i % 7) as f64)).unwrap();
        }
        for i in 0..4 {
            let s = b.add_port("u", Point2::new(0.0, 2000.0 + 300.0 * i as f64));
            let t = b.add_port("v", Point2::new(20.0, 2000.0 + 300.0 * i as f64));
            b.add_channel(s, t, mbps(6.0)).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn level_stats_partials_merge_to_serial_totals() {
        // Split the k = 2 sweep of a real instance at arbitrary points;
        // the merged partials must equal the whole-sweep totals.
        let g = corridor_graph(10);
        let m = DistanceMatrices::compute(&g);
        let lib = wan_paper_library();
        let n = g.arc_count();
        let mut pairs = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                pairs.push((i, j));
            }
        }
        let sweep = |range: &[(usize, usize)]| {
            let mut ls = LevelStats {
                k: 2,
                ..LevelStats::default()
            };
            for &(i, j) in range {
                ls.examined += 1;
                if pair_pruned(&m, i, j) {
                    ls.geometry_pruned += 1;
                } else if bandwidth_pruned(&g, &lib, &[i, j]) {
                    ls.bandwidth_pruned += 1;
                } else {
                    ls.survivors += 1;
                }
            }
            ls
        };
        let whole = sweep(&pairs);
        for parts in [1usize, 2, 3, 7, pairs.len()] {
            let mut merged = LevelStats {
                k: 2,
                ..LevelStats::default()
            };
            for (s, e) in chunk_ranges(pairs.len(), parts) {
                merged.merge(&sweep(&pairs[s..e]));
            }
            assert_eq!(merged, whole, "parts = {parts}");
        }
    }

    #[test]
    #[should_panic(expected = "different levels")]
    fn level_stats_merge_rejects_mixed_levels() {
        let mut a = LevelStats {
            k: 2,
            ..LevelStats::default()
        };
        let b = LevelStats {
            k: 3,
            ..LevelStats::default()
        };
        a.merge(&b);
    }

    #[test]
    fn enumeration_is_identical_across_thread_counts() {
        let g = corridor_graph(12);
        let m = DistanceMatrices::compute(&g);
        let lib = wan_paper_library();
        for strategy in [
            EnumerationStrategy::PairwiseCliques,
            EnumerationStrategy::Exhaustive,
        ] {
            let cfg = MergeConfig {
                strategy,
                max_k: Some(4),
                ..MergeConfig::default()
            };
            let serial = enumerate_with(&g, &lib, &m, &cfg, &Executor::serial());
            for threads in [2, 4, 8] {
                let par = enumerate_with(&g, &lib, &m, &cfg, &Executor::new(threads));
                assert_eq!(
                    par.subsets_by_k, serial.subsets_by_k,
                    "{strategy:?} threads = {threads}"
                );
                assert_eq!(par.stats.counts, serial.stats.counts);
                assert_eq!(par.stats.deactivated_at, serial.stats.deactivated_at);
                assert_eq!(par.stats.geometry_pruned, serial.stats.geometry_pruned);
                assert_eq!(par.stats.bandwidth_pruned, serial.stats.bandwidth_pruned);
                assert_eq!(par.stats.truncated_at_k, serial.stats.truncated_at_k);
                assert_eq!(par.stats.levels, serial.stats.levels);
            }
        }
    }

    #[test]
    fn enumeration_truncation_is_thread_count_invariant() {
        // A cap small enough to trip mid-level: the exactly-cap kept
        // subsets, the truncation flag, and every counter must not depend
        // on the thread count.
        let g = corridor_graph(12);
        let m = DistanceMatrices::compute(&g);
        let lib = wan_paper_library();
        let cfg = MergeConfig {
            max_subsets_per_level: 9,
            ..MergeConfig::default()
        };
        let serial = enumerate_with(&g, &lib, &m, &cfg, &Executor::serial());
        assert!(serial.stats.truncated_at_k.is_some(), "cap should trip");
        for threads in [3, 6] {
            let par = enumerate_with(&g, &lib, &m, &cfg, &Executor::new(threads));
            assert_eq!(par.subsets_by_k, serial.subsets_by_k);
            assert_eq!(par.stats.levels, serial.stats.levels);
            assert_eq!(par.stats.truncated_at_k, serial.stats.truncated_at_k);
        }
    }
}

//! Human-readable reports: the paper-style tables and run summaries
//! consumed by the benchmark harness and the examples.

use crate::constraint::{ArcId, ConstraintGraph};
use crate::library::{Library, NodeKind};
use crate::matrices::{DistanceMatrices, Matrix};
use crate::placement::{Candidate, CandidateKind, Endpoint, HubHardware};
use crate::synthesis::{SynthesisResult, SynthesisStats};
use ccs_obs::json::Value;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Schema identifier of the [`topology_json`] document.
pub const TOPOLOGY_SCHEMA: &str = "ccs-topology-v1";

/// Renders the synthesized architecture as a machine-readable JSON
/// document (schema [`TOPOLOGY_SCHEMA`]).
///
/// The document is a pure function of the synthesis *result* — costs,
/// selected candidates, hub positions, per-segment plans — and contains
/// no timings, counters, or other scheduling-dependent data. Because
/// synthesis is bit-identical across thread counts, serializing this
/// value yields byte-equal text for `--threads 1` and `--threads N`;
/// the CI determinism gate diffs exactly this section.
pub fn topology_json(
    result: &SynthesisResult,
    graph: &ConstraintGraph,
    library: &Library,
) -> Value {
    let mut doc = BTreeMap::new();
    doc.insert("schema".into(), Value::Str(TOPOLOGY_SCHEMA.into()));
    doc.insert(
        "arc_count".into(),
        Value::Num(result.stats.arc_count as f64),
    );
    doc.insert("total_cost".into(), Value::Num(result.total_cost()));
    doc.insert("p2p_cost".into(), Value::Num(result.stats.p2p_cost));
    doc.insert(
        "candidate_count".into(),
        Value::Num(result.candidates.len() as f64),
    );
    doc.insert(
        "selected".into(),
        Value::Arr(
            result
                .selected
                .iter()
                .map(|c| candidate_json(c, graph, library))
                .collect(),
        ),
    );
    Value::Obj(doc)
}

fn endpoint_json(e: Endpoint, graph: &ConstraintGraph) -> Value {
    Value::Str(match e {
        Endpoint::Port(p) => graph.port(p).name.clone(),
        Endpoint::HubA => "hub_a".to_string(),
        Endpoint::HubB => "hub_b".to_string(),
    })
}

fn point_json(p: ccs_geom::Point2) -> Value {
    Value::Arr(vec![Value::Num(p.x), Value::Num(p.y)])
}

fn candidate_json(c: &Candidate, graph: &ConstraintGraph, library: &Library) -> Value {
    let mut o = BTreeMap::new();
    o.insert(
        "arcs".into(),
        Value::Arr(c.arcs.iter().map(|&i| Value::Num(i as f64)).collect()),
    );
    match c.kind {
        CandidateKind::PointToPoint => {
            o.insert("kind".into(), Value::Str("p2p".into()));
        }
        CandidateKind::Merging { k } => {
            o.insert("kind".into(), Value::Str("merge".into()));
            o.insert("k".into(), Value::Num(k as f64));
            o.insert(
                "hub_hardware".into(),
                Value::Str(
                    match c.hub_hardware {
                        HubHardware::MuxDemux => "mux_demux",
                        HubHardware::SingleSwitch => "single_switch",
                    }
                    .into(),
                ),
            );
            if let Some(h) = c.hub_a {
                o.insert("hub_a".into(), point_json(h));
            }
            if let Some(h) = c.hub_b {
                o.insert("hub_b".into(), point_json(h));
            }
        }
    }
    o.insert("cost".into(), Value::Num(c.cost));
    o.insert("node_cost".into(), Value::Num(c.node_cost));
    o.insert(
        "segments".into(),
        Value::Arr(
            c.segments
                .iter()
                .map(|sg| {
                    let mut s = BTreeMap::new();
                    s.insert("from".into(), endpoint_json(sg.from, graph));
                    s.insert("to".into(), endpoint_json(sg.to, graph));
                    s.insert("length".into(), Value::Num(sg.length));
                    s.insert("demand_mbps".into(), Value::Num(sg.demand.as_mbps()));
                    s.insert(
                        "link".into(),
                        Value::Str(library.link(sg.plan.link).name.clone()),
                    );
                    s.insert("hops".into(), Value::Num(f64::from(sg.plan.hops)));
                    s.insert("lanes".into(), Value::Num(f64::from(sg.plan.lanes)));
                    s.insert(
                        "repeaters_per_lane".into(),
                        Value::Num(f64::from(sg.plan.repeaters_per_lane)),
                    );
                    s.insert("cost".into(), Value::Num(sg.plan.cost));
                    s.insert(
                        "arcs".into(),
                        Value::Arr(sg.arcs.iter().map(|&i| Value::Num(i as f64)).collect()),
                    );
                    Value::Obj(s)
                })
                .collect(),
        ),
    );
    Value::Obj(o)
}

/// Renders the constraint graph's arcs in a compact table.
pub fn arcs_table(graph: &ConstraintGraph) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:>4} {:>12} {:>12} {:>10} {:>14}",
        "arc", "from", "to", "d(a)", "b(a)"
    );
    for (id, a) in graph.arcs() {
        let _ = writeln!(
            s,
            "{:>4} {:>12} {:>12} {:>10.2} {:>14}",
            id.to_string(),
            graph.port(a.src).name,
            graph.port(a.dst).name,
            a.distance,
            a.bandwidth.to_string(),
        );
    }
    s
}

/// Renders Table 1 (the Γ matrix) in the paper's layout.
pub fn table_gamma(m: &DistanceMatrices) -> String {
    m.format_upper(Matrix::Gamma)
}

/// Renders Table 2 (the Δ matrix) in the paper's layout.
pub fn table_delta(m: &DistanceMatrices) -> String {
    m.format_upper(Matrix::Delta)
}

/// Renders the merge-slack upper triangle `ε = Γ − Δ`: positive entries
/// are Lemma-3.1-mergeable pairs, marked with `*`.
pub fn table_slack(m: &DistanceMatrices) -> String {
    let n = m.len();
    let mut s = String::new();
    let _ = write!(s, "{:>6}", "");
    for j in 0..n {
        let _ = write!(s, "{:>10}", format!("a{}", j + 1));
    }
    s.push('\n');
    for i in 0..n {
        let _ = write!(s, "{:>6}", format!("a{}", i + 1));
        for j in 0..n {
            if j > i {
                let slack = m.slack(i, j);
                let mark = if slack > 1e-12 { "*" } else { " " };
                let _ = write!(s, "{:>9.2}{mark}", slack);
            } else {
                let _ = write!(s, "{:>10}", "");
            }
        }
        s.push('\n');
    }
    s
}

/// Renders a one-line-per-candidate summary of the selected architecture.
pub fn selection_summary(
    result: &SynthesisResult,
    graph: &ConstraintGraph,
    library: &Library,
) -> String {
    let mut s = String::new();
    for c in &result.selected {
        let arcs: Vec<String> = c
            .arcs
            .iter()
            .map(|&i| ArcId(i as u32).to_string())
            .collect();
        match c.kind {
            CandidateKind::PointToPoint => {
                let seg = &c.segments[0];
                let _ = writeln!(
                    s,
                    "  {} -> point-to-point via {} (cost {:.2})",
                    arcs.join(","),
                    library.link(seg.plan.link).name,
                    c.cost
                );
            }
            CandidateKind::Merging { k } => {
                let trunk = c
                    .segments
                    .iter()
                    .find(|sg| {
                        sg.from == crate::placement::Endpoint::HubA
                            && sg.to == crate::placement::Endpoint::HubB
                    })
                    .map(|sg| library.link(sg.plan.link).name.as_str())
                    .unwrap_or("<zero-length trunk>");
                let _ = writeln!(
                    s,
                    "  {} -> {k}-way merge, trunk {} (cost {:.2})",
                    arcs.join(","),
                    trunk,
                    c.cost
                );
            }
        }
    }
    let _ = writeln!(s, "  total cost {:.2}", result.total_cost());
    let _ = writeln!(
        s,
        "  point-to-point baseline {:.2} (saving {:.1}%)",
        result.stats.p2p_cost,
        result.saving_vs_p2p() * 100.0
    );
    let _ = writeln!(
        s,
        "  nodes: {} repeaters, {} mux, {} demux",
        result.implementation.repeater_count(),
        result.implementation.count_nodes(NodeKind::Mux),
        result.implementation.count_nodes(NodeKind::Demux),
    );
    let _ = graph; // reserved for richer per-arc reporting
    s
}

/// Renders the "where did the time go" table: per-phase wall-clock
/// share of the run, followed by the run's per-phase counters.
pub fn phase_table(stats: &SynthesisStats) -> String {
    let mut s = String::new();
    let total = stats.elapsed.as_secs_f64();
    let _ = writeln!(s, "{:>12} {:>12} {:>7}", "phase", "wall", "share");
    let mut accounted = 0.0;
    for (name, d) in stats.phase_timings.phases() {
        let secs = d.as_secs_f64();
        accounted += secs;
        let share = if total > 0.0 {
            100.0 * secs / total
        } else {
            0.0
        };
        let _ = writeln!(s, "{:>12} {:>12} {:>6.1}%", name, format!("{d:.2?}"), share);
    }
    // Phase boundaries exclude argument checking and stats assembly;
    // show the remainder so the shares visibly sum to 100%.
    let other = std::time::Duration::from_secs_f64((total - accounted).max(0.0));
    let share = if total > 0.0 {
        100.0 * other.as_secs_f64() / total
    } else {
        0.0
    };
    let _ = writeln!(
        s,
        "{:>12} {:>12} {:>6.1}%",
        "other",
        format!("{other:.2?}"),
        share
    );
    let _ = writeln!(
        s,
        "{:>12} {:>12} {:>6.1}%",
        "total",
        format!("{:.2?}", stats.elapsed),
        100.0
    );
    if !stats.counters.is_empty() {
        let _ = writeln!(s, "  counters:");
        for (name, value) in &stats.counters {
            let _ = writeln!(s, "    {name} = {value}");
        }
    }
    s
}

/// Renders the per-k merge-candidate counts ("thirteen 2-way, …").
pub fn candidate_counts(result: &SynthesisResult) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "  {} point-to-point candidates", result.stats.arc_count);
    for &(k, n) in &result.stats.merge_stats.counts {
        let _ = writeln!(s, "  {n} {k}-way merge candidates");
    }
    if let Some(k) = result.stats.merge_stats.truncated_at_k {
        let _ = writeln!(s, "  (enumeration truncated at k = {k})");
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::wan_paper_library;
    use crate::synthesis::Synthesizer;
    use crate::units::Bandwidth;
    use ccs_geom::{Norm, Point2};

    fn instance() -> (ConstraintGraph, Library) {
        let mut b = ConstraintGraph::builder(Norm::Euclidean);
        let a = b.add_port("A", Point2::new(0.0, 0.0));
        let c = b.add_port("B", Point2::new(5.0, 0.0));
        let d = b.add_port("D", Point2::new(64.8, 76.4));
        b.add_channel(a, d, Bandwidth::from_mbps(10.0)).unwrap();
        b.add_channel(c, d, Bandwidth::from_mbps(10.0)).unwrap();
        (b.build().unwrap(), wan_paper_library())
    }

    #[test]
    fn arcs_table_lists_every_arc() {
        let (g, _) = instance();
        let t = arcs_table(&g);
        assert!(t.contains("a1"));
        assert!(t.contains("a2"));
        assert!(t.contains("10.000 Mb/s"));
    }

    #[test]
    fn matrix_tables_render() {
        let (g, _) = instance();
        let m = DistanceMatrices::compute(&g);
        assert!(table_gamma(&m).contains("a2"));
        assert!(table_delta(&m).contains("a2"));
    }

    #[test]
    fn slack_table_marks_mergeable_pairs() {
        let (g, _) = instance();
        let m = DistanceMatrices::compute(&g);
        let t = table_slack(&m);
        // The two co-sourced channels have large positive slack.
        assert!(t.contains('*'), "{t}");
        assert!(t.contains("a2"));
    }

    #[test]
    fn phase_table_lists_every_phase_and_counters() {
        let (g, lib) = instance();
        let r = Synthesizer::new(&g, &lib).run().unwrap();
        let t = phase_table(&r.stats);
        for name in [
            "p2p",
            "matrices",
            "merging",
            "placement",
            "covering",
            "assembly",
            "other",
            "total",
        ] {
            assert!(t.contains(name), "missing {name} in:\n{t}");
        }
        assert!(t.contains("counters:"), "{t}");
        assert!(t.contains("merging.k2.examined"), "{t}");
    }

    #[test]
    fn topology_json_is_deterministic_and_complete() {
        let (g, lib) = instance();
        let r = Synthesizer::new(&g, &lib).run().unwrap();
        let doc = topology_json(&r, &g, &lib);
        assert_eq!(
            doc.get("schema").and_then(Value::as_str),
            Some("ccs-topology-v1")
        );
        assert_eq!(doc.get("arc_count").and_then(Value::as_num), Some(2.0));
        assert_eq!(
            doc.get("total_cost").and_then(Value::as_num),
            Some(r.total_cost())
        );
        let selected = match doc.get("selected") {
            Some(Value::Arr(v)) => v,
            other => panic!("selected missing: {other:?}"),
        };
        assert_eq!(selected.len(), r.selected.len());
        for (v, c) in selected.iter().zip(&r.selected) {
            assert_eq!(v.get("cost").and_then(Value::as_num), Some(c.cost));
            match v.get("kind").and_then(Value::as_str) {
                Some("merge") => assert!(v.get("hub_a").is_some()),
                Some("p2p") => assert!(v.get("k").is_none()),
                other => panic!("bad kind {other:?}"),
            }
        }
        // Serializing twice yields byte-equal text (BTreeMap ordering).
        let mut a = String::new();
        let mut b = String::new();
        doc.write_pretty(&mut a, 0);
        topology_json(&r, &g, &lib).write_pretty(&mut b, 0);
        assert_eq!(a, b);
        assert!(a.contains("\"segments\""), "{a}");
    }

    #[test]
    fn summary_mentions_selection_and_totals() {
        let (g, lib) = instance();
        let r = Synthesizer::new(&g, &lib).run().unwrap();
        let s = selection_summary(&r, &g, &lib);
        assert!(s.contains("total cost"));
        assert!(s.contains("baseline"));
        let c = candidate_counts(&r);
        assert!(c.contains("point-to-point candidates"));
    }
}

//! The module-level system model (paper Fig. 1).
//!
//! The paper's starting point is a set of *computational modules*
//! communicating over virtual channels; each channel endpoint gets its
//! own dedicated port. [`SystemSpec`] captures that view and lowers it to
//! a [`ConstraintGraph`] by materializing one port per channel endpoint
//! at the owning module's position — the approximation the paper itself
//! uses ("all the ports of a computation node have the same position").

use crate::constraint::{ConstraintGraph, ConstraintGraphBuilder};
use crate::error::BuildError;
use crate::units::Bandwidth;
use ccs_geom::{Norm, Point2};

/// Identifier of a module within a [`SystemSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ModuleId(pub u32);

impl ModuleId {
    /// The id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A computational module: a named position.
#[derive(Debug, Clone, PartialEq)]
pub struct Module {
    /// Module name (e.g. `"CPU"`, `"IDCT"`).
    pub name: String,
    /// Placement of the module (all its ports share it).
    pub position: Point2,
}

/// A module-level system specification (Fig. 1's left-hand side).
///
/// # Examples
///
/// ```
/// use ccs_core::model::SystemSpec;
/// use ccs_core::units::Bandwidth;
/// use ccs_geom::{Norm, Point2};
///
/// let mut spec = SystemSpec::new(Norm::Euclidean);
/// let a = spec.add_module("A", Point2::new(0.0, 0.0));
/// let b = spec.add_module("B", Point2::new(5.0, 0.0));
/// spec.connect(a, b, Bandwidth::from_mbps(10.0));
/// spec.connect(b, a, Bandwidth::from_mbps(10.0)); // full duplex = 2 channels
/// let g = spec.to_constraint_graph()?;
/// assert_eq!(g.arc_count(), 2);
/// assert_eq!(g.port_count(), 4); // one dedicated port per endpoint
/// # Ok::<(), ccs_core::error::BuildError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SystemSpec {
    norm: Norm,
    modules: Vec<Module>,
    channels: Vec<(ModuleId, ModuleId, Bandwidth)>,
}

impl SystemSpec {
    /// Creates an empty specification measured under `norm`.
    pub fn new(norm: Norm) -> Self {
        SystemSpec {
            norm,
            modules: Vec::new(),
            channels: Vec::new(),
        }
    }

    /// Adds a module at `position`.
    pub fn add_module(&mut self, name: impl Into<String>, position: Point2) -> ModuleId {
        let id = ModuleId(self.modules.len() as u32);
        self.modules.push(Module {
            name: name.into(),
            position,
        });
        id
    }

    /// Declares a unidirectional channel from `src` to `dst`.
    pub fn connect(&mut self, src: ModuleId, dst: ModuleId, bandwidth: Bandwidth) -> &mut Self {
        self.channels.push((src, dst, bandwidth));
        self
    }

    /// The modules, in insertion order.
    pub fn modules(&self) -> &[Module] {
        &self.modules
    }

    /// The declared channels.
    pub fn channels(&self) -> &[(ModuleId, ModuleId, Bandwidth)] {
        &self.channels
    }

    /// The norm of the specification.
    pub fn norm(&self) -> Norm {
        self.norm
    }

    /// Lowers to a constraint graph: one dedicated output/input port per
    /// channel, placed at the owning module's position and named
    /// `"<module>.out<i>"` / `"<module>.in<i>"`.
    ///
    /// # Errors
    ///
    /// Propagates [`BuildError`] (e.g. a channel between co-located
    /// modules, an unknown module id surfacing as `UnknownPort`, or
    /// self-connections).
    pub fn to_constraint_graph(&self) -> Result<ConstraintGraph, BuildError> {
        let mut b: ConstraintGraphBuilder = ConstraintGraph::builder(self.norm);
        for (i, (src, dst, bw)) in self.channels.iter().enumerate() {
            if src == dst {
                // Create one port so the error names something real.
                let p = b.add_port(
                    format!("{}.loop{}", self.module_name(*src), i),
                    self.module_pos(*src),
                );
                return Err(BuildError::SelfLoop(p));
            }
            let out_port = b.add_port(
                format!("{}.out{}", self.module_name(*src), i),
                self.module_pos(*src),
            );
            let in_port = b.add_port(
                format!("{}.in{}", self.module_name(*dst), i),
                self.module_pos(*dst),
            );
            b.add_channel(out_port, in_port, *bw)?;
        }
        b.build()
    }

    fn module_name(&self, id: ModuleId) -> &str {
        self.modules
            .get(id.index())
            .map_or("<unknown>", |m| m.name.as_str())
    }

    fn module_pos(&self, id: ModuleId) -> Point2 {
        self.modules
            .get(id.index())
            .map_or(Point2::ORIGIN, |m| m.position)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mbps(x: f64) -> Bandwidth {
        Bandwidth::from_mbps(x)
    }

    #[test]
    fn lowering_creates_dedicated_ports() {
        let mut spec = SystemSpec::new(Norm::Euclidean);
        let a = spec.add_module("A", Point2::new(0.0, 0.0));
        let b = spec.add_module("B", Point2::new(10.0, 0.0));
        let c = spec.add_module("C", Point2::new(0.0, 10.0));
        spec.connect(a, b, mbps(1.0));
        spec.connect(a, c, mbps(2.0));
        let g = spec.to_constraint_graph().unwrap();
        assert_eq!(g.arc_count(), 2);
        assert_eq!(g.port_count(), 4);
        // Port names encode module and direction.
        let names: Vec<&str> = g.ports().map(|(_, p)| p.name.as_str()).collect();
        assert!(names.contains(&"A.out0"));
        assert!(names.contains(&"B.in0"));
        assert!(names.contains(&"A.out1"));
        assert!(names.contains(&"C.in1"));
    }

    #[test]
    fn ports_of_one_module_share_position() {
        let mut spec = SystemSpec::new(Norm::Euclidean);
        let a = spec.add_module("A", Point2::new(1.0, 2.0));
        let b = spec.add_module("B", Point2::new(9.0, 2.0));
        spec.connect(a, b, mbps(1.0));
        spec.connect(b, a, mbps(1.0));
        let g = spec.to_constraint_graph().unwrap();
        let positions: Vec<Point2> = g
            .ports()
            .filter(|(_, p)| p.name.starts_with("A."))
            .map(|(_, p)| p.position)
            .collect();
        assert_eq!(positions.len(), 2);
        assert_eq!(positions[0], positions[1]);
    }

    #[test]
    fn self_connection_rejected() {
        let mut spec = SystemSpec::new(Norm::Euclidean);
        let a = spec.add_module("A", Point2::ORIGIN);
        spec.connect(a, a, mbps(1.0));
        assert!(matches!(
            spec.to_constraint_graph(),
            Err(BuildError::SelfLoop(_))
        ));
    }

    #[test]
    fn colocated_modules_rejected() {
        let mut spec = SystemSpec::new(Norm::Euclidean);
        let a = spec.add_module("A", Point2::ORIGIN);
        let b = spec.add_module("B", Point2::ORIGIN);
        spec.connect(a, b, mbps(1.0));
        assert!(matches!(
            spec.to_constraint_graph(),
            Err(BuildError::ZeroDistance(_, _))
        ));
    }

    #[test]
    fn accessors() {
        let mut spec = SystemSpec::new(Norm::Manhattan);
        let a = spec.add_module("A", Point2::ORIGIN);
        let b = spec.add_module("B", Point2::new(1.0, 1.0));
        spec.connect(a, b, mbps(3.0));
        assert_eq!(spec.modules().len(), 2);
        assert_eq!(spec.channels().len(), 1);
        assert_eq!(spec.norm(), Norm::Manhattan);
        assert_eq!(spec.channels()[0].2, mbps(3.0));
    }
}

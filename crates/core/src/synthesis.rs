//! The end-to-end synthesis pipeline (the paper's two-phase algorithm).
//!
//! [`Synthesizer::run`] executes:
//!
//! 1. Γ/Δ matrix computation ([`crate::matrices`]);
//! 2. optimum point-to-point candidates for every arc ([`crate::p2p`],
//!    [`crate::placement`]);
//! 3. merge-candidate enumeration with the paper's pruning theorems
//!    ([`crate::merging`]);
//! 4. hub placement and exact costing of every surviving merge subset
//!    ([`crate::placement`]), with an additional *cost dominance* filter
//!    (a merging never cheaper than its members' point-to-point sum can
//!    be dropped exactly) — subsets whose cheap geometric lower bound
//!    ([`crate::placement::merge_cost_lower_bound`]) already reaches the
//!    dominance threshold skip the solve outright
//!    ([`MergeConfig::lb_gate`]);
//! 5. weighted unate covering over all candidates ([`crate::cover`]);
//! 6. assembly of the final implementation graph
//!    ([`crate::implementation`]).

use crate::constraint::{Channel, ConstraintGraph, Port, PortId};
use crate::cover::{select_seeded_on, CoverStrategy};
use crate::error::SynthesisError;
use crate::implementation::ImplementationGraph;
use crate::library::{Library, NodeKind};
use crate::matrices::DistanceMatrices;
use crate::merging::{enumerate_with, MergeConfig, MergeStats};
use crate::placement::{
    merge_candidate_explained, merge_cost_lower_bound, point_to_point_candidate, Candidate,
    InfeasibleReason, PlacementCache,
};
use crate::units::Bandwidth;
use ccs_exec::{CancelToken, ExecStats, Executor};
use ccs_geom::Point2;
use ccs_obs::ledger::{self, Cause, DecisionEvent};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Tunable knobs of the pipeline. The default reproduces the paper.
#[derive(Debug, Clone, Default)]
pub struct SynthesisConfig {
    /// Merge-candidate enumeration configuration.
    pub merge: MergeConfig,
    /// Which UCP solver selects the global solution.
    pub cover: CoverStrategy,
    /// Drop merge candidates costing at least the sum of their members'
    /// point-to-point costs (exact, loses no optimality).
    pub keep_dominated: bool,
    /// Verify Assumption 2.1 before running (O(|A|²) extra work) and fail
    /// fast when the library violates it.
    pub check_assumption: bool,
    /// Worker threads for the parallel phases (p2p, merging sweeps, hub
    /// placement). `0` resolves through [`ccs_exec::default_threads`]
    /// (the `CCS_THREADS` environment variable, else the machine's
    /// available parallelism). Results are bit-identical for every
    /// thread count.
    pub threads: usize,
    /// Cooperative cancellation: the pipeline polls this token at phase
    /// boundaries and per sweep item and aborts with
    /// [`SynthesisError::Cancelled`] once it is cancelled. The default
    /// token is never cancelled.
    pub cancel: CancelToken,
    /// A placement-rate cache shared across runs (the `ccs serve`
    /// daemon reuses one per library so repeated demands are priced
    /// once per process, not once per request). Cached values are pure
    /// functions of `(library, demand)`, so sharing cannot perturb
    /// results — but a cache must only ever be shared between runs
    /// using the *same* library. `None` gives each run a private cache.
    pub shared_cache: Option<Arc<PlacementCache>>,
}

/// Configs compare by value for the plain knobs; the cancel token and
/// shared cache compare by identity (they are handles, not values).
impl PartialEq for SynthesisConfig {
    fn eq(&self, other: &Self) -> bool {
        self.merge == other.merge
            && self.cover == other.cover
            && self.keep_dominated == other.keep_dominated
            && self.check_assumption == other.check_assumption
            && self.threads == other.threads
            && self.cancel == other.cancel
            && match (&self.shared_cache, &other.shared_cache) {
                (Some(a), Some(b)) => Arc::ptr_eq(a, b),
                (None, None) => true,
                _ => false,
            }
    }
}

/// Wall-clock time spent in each pipeline phase of one synthesis run.
///
/// The same durations are reported to the global [`ccs_obs`] recorder
/// as spans named `matrices`, `p2p`, `merging`, `placement`,
/// `covering`, `assembly`, and `total`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PhaseTimings {
    /// Γ/Δ matrix computation.
    pub matrices: Duration,
    /// Optimum point-to-point candidates for every arc.
    pub p2p: Duration,
    /// Merge-candidate enumeration (pruning theorems).
    pub merging: Duration,
    /// Hub placement and exact costing of surviving merge subsets.
    pub placement: Duration,
    /// Weighted unate covering.
    pub covering: Duration,
    /// Implementation-graph assembly.
    pub assembly: Duration,
}

impl PhaseTimings {
    /// The phases in pipeline order, with their span names.
    pub fn phases(&self) -> [(&'static str, Duration); 6] {
        [
            ("p2p", self.p2p),
            ("matrices", self.matrices),
            ("merging", self.merging),
            ("placement", self.placement),
            ("covering", self.covering),
            ("assembly", self.assembly),
        ]
    }
}

/// Summed per-worker CPU time of the parallelized phases (the
/// [`ExecStats::busy`] totals of their sweeps).
///
/// Compare against the matching [`PhaseTimings`] wall clocks: with `N`
/// busy workers, CPU time approaches `N ×` wall time. Reported to
/// [`ccs_obs`] as the spans `p2p.cpu`, `merging.cpu`, and
/// `placement.cpu`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PhaseCpuTimings {
    /// Point-to-point candidate sweep.
    pub p2p: Duration,
    /// Merge-enumeration extension/prune sweeps.
    pub merging: Duration,
    /// Hub placement sweep over surviving subsets.
    pub placement: Duration,
}

impl PhaseCpuTimings {
    /// The parallel phases in pipeline order, with their span names.
    pub fn phases(&self) -> [(&'static str, Duration); 3] {
        [
            ("p2p.cpu", self.p2p),
            ("merging.cpu", self.merging),
            ("placement.cpu", self.placement),
        ]
    }
}

/// Statistics collected during one synthesis run.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthesisStats {
    /// Number of constraint arcs.
    pub arc_count: usize,
    /// Cost of the pure point-to-point solution (Def. 2.6 baseline).
    pub p2p_cost: f64,
    /// Enumeration statistics (per-k counts, prunes, Theorem 3.1 drops).
    pub merge_stats: MergeStats,
    /// Merge subsets that survived pruning but were structurally
    /// infeasible with this library.
    pub infeasible_merges: usize,
    /// Merge candidates dropped by the cost-dominance filter.
    pub dominated_dropped: usize,
    /// Merge subsets whose placement solve was skipped by the
    /// lower-bound gate ([`MergeConfig::lb_gate`]); such subsets are
    /// provably dominated (or infeasible) and are counted here instead
    /// of in [`infeasible_merges`](Self::infeasible_merges) /
    /// [`dominated_dropped`](Self::dominated_dropped).
    pub lb_gated: usize,
    /// Weber/two-hub solver invocations avoided by the lower-bound gate
    /// (`lb_gated ×` solves one subset costs with this library).
    pub solves_skipped: u64,
    /// Total candidate columns handed to the UCP.
    pub ucp_cols: usize,
    /// UCP rows (= arcs).
    pub ucp_rows: usize,
    /// Exact-solver statistics, when the exact solver ran.
    pub ucp_stats: Option<ccs_covering::SolveStats>,
    /// Wall-clock time of the run.
    pub elapsed: Duration,
    /// Per-phase wall-clock breakdown of `elapsed`.
    pub phase_timings: PhaseTimings,
    /// Summed per-worker CPU time of the parallelized phases.
    pub phase_cpu: PhaseCpuTimings,
    /// Worker threads used by the parallel phases (resolved, ≥ 1).
    pub threads: usize,
    /// Named per-phase counters (same names as the [`ccs_obs`] counter
    /// stream: `merging.k{k}.examined`, `covering.bnb_nodes`, ...),
    /// derived deterministically from this run alone. Scheduling-
    /// dependent executor metrics (steal counts, queue depths) are
    /// deliberately excluded; only `exec.threads` and `exec.tasks`
    /// appear, and both are fixed for a given thread count.
    pub counters: BTreeMap<String, u64>,
}

/// The output of a synthesis run.
#[derive(Debug, Clone)]
pub struct SynthesisResult {
    /// The minimum-cost architecture.
    pub implementation: ImplementationGraph,
    /// The selected candidates, in covering order.
    pub selected: Vec<Candidate>,
    /// All candidates considered by the covering step (point-to-point
    /// first, then mergings in enumeration order).
    pub candidates: Vec<Candidate>,
    /// The Γ/Δ matrices of the instance.
    pub matrices: DistanceMatrices,
    /// Run statistics.
    pub stats: SynthesisStats,
}

impl SynthesisResult {
    /// Total cost of the selected architecture.
    pub fn total_cost(&self) -> f64 {
        self.implementation.total_cost()
    }

    /// Cost saving of the synthesized architecture relative to the pure
    /// point-to-point solution, as a fraction in `[0, 1)`.
    pub fn saving_vs_p2p(&self) -> f64 {
        if self.stats.p2p_cost <= 0.0 {
            return 0.0;
        }
        1.0 - self.total_cost() / self.stats.p2p_cost
    }
}

/// The synthesis facade: borrows a constraint graph and a library, runs
/// the full pipeline on [`run`](Self::run).
///
/// # Examples
///
/// See the [crate-level quickstart](crate).
#[derive(Debug, Clone)]
pub struct Synthesizer<'a> {
    graph: &'a ConstraintGraph,
    library: &'a Library,
    config: SynthesisConfig,
}

impl<'a> Synthesizer<'a> {
    /// Creates a synthesizer with the default (paper-faithful)
    /// configuration.
    pub fn new(graph: &'a ConstraintGraph, library: &'a Library) -> Self {
        Synthesizer {
            graph,
            library,
            config: SynthesisConfig::default(),
        }
    }

    /// Replaces the configuration.
    #[must_use]
    pub fn with_config(mut self, config: SynthesisConfig) -> Self {
        self.config = config;
        self
    }

    /// The active configuration.
    pub fn config(&self) -> &SynthesisConfig {
        &self.config
    }

    /// Runs the full pipeline.
    ///
    /// # Errors
    ///
    /// * per-arc infeasibility from [`crate::p2p::best_plan`]
    ///   ([`SynthesisError::NoFeasibleLink`] and friends);
    /// * [`SynthesisError::AssumptionViolated`] when
    ///   [`SynthesisConfig::check_assumption`] is set and fails;
    /// * [`SynthesisError::Cover`] from the covering solver.
    pub fn run(&self) -> Result<SynthesisResult, SynthesisError> {
        self.run_impl(None)
    }

    /// Pipeline body shared by cold runs ([`run`](Self::run), `session
    /// = None`) and warm re-synthesis ([`SynthesisSession`], `session =
    /// Some`). A warm run reuses the session's cached point-to-point
    /// candidates and placement verdicts (both pure functions of their
    /// member arcs and the library — [`SynthesisSession::apply_edits`]
    /// has already dropped every entry an edit could have touched) and
    /// seeds the covering solver with the previous selection. None of
    /// the reuse can change a single result bit: cached values are the
    /// bits a recompute would produce, they are folded in the same
    /// order, and [`select_seeded`] is result-identical to an unseeded
    /// solve by construction.
    fn run_impl(
        &self,
        mut session: Option<&mut SessionState>,
    ) -> Result<SynthesisResult, SynthesisError> {
        let warm = session.is_some();
        let start = Instant::now();
        // The whole run profiles as one `synthesize` tree; each phase
        // below opens a child scope (dropped at phase end so siblings
        // never nest). Allocation deltas bracket the same regions.
        let profile_run = ccs_obs::profile::scope("synthesize");
        let mut timings = PhaseTimings::default();
        let mut cpu = PhaseCpuTimings::default();
        let graph = self.graph;
        let library = self.library;
        let exec = Executor::new(self.config.threads);
        let threads = exec.threads();
        let cancel = &self.config.cancel;
        if cancel.is_cancelled() {
            return Err(SynthesisError::Cancelled);
        }

        if self.config.check_assumption {
            if let Some((a, b)) = crate::p2p::check_assumption(graph, library)? {
                return Err(SynthesisError::AssumptionViolated(a, b));
            }
        }

        // Phase 1a: optimum point-to-point candidates (always included —
        // they make the covering matrix feasible by construction). The
        // sweep fans out per arc; folding the slot-ordered results keeps
        // the accumulated p2p cost and the first reported error
        // identical to a serial loop.
        let t = Instant::now();
        let alloc0 = ccs_obs::alloc::stats();
        let profile_phase = ccs_obs::profile::scope("p2p");
        let arc_idxs: Vec<usize> = (0..graph.arc_count()).collect();
        let (p2p_results, p2p_exec) = {
            let cached: Option<&[Option<Candidate>]> = session
                .as_deref()
                .map(|s| s.p2p.as_slice())
                .filter(|p| p.len() == graph.arc_count());
            exec.par_map_stats(&arc_idxs, |_, &i| {
                if cancel.is_cancelled() {
                    return Err(SynthesisError::Cancelled);
                }
                if let Some(c) = cached.and_then(|p| p[i].as_ref()) {
                    return Ok((c.clone(), true));
                }
                point_to_point_candidate(graph, library, i).map(|c| (c, false))
            })
        };
        let mut candidates: Vec<Candidate> = Vec::with_capacity(p2p_results.len());
        let mut p2p_cost = 0.0;
        let mut p2p_reused = 0u64;
        for r in p2p_results {
            let (c, reused) = r?;
            p2p_cost += c.cost;
            p2p_reused += u64::from(reused);
            candidates.push(c);
        }
        drop(profile_phase);
        phase_alloc_counters("p2p", &alloc0);
        ccs_obs::counter("p2p.candidates", candidates.len() as u64);
        timings.p2p = t.elapsed();
        cpu.p2p = p2p_exec.busy;

        if cancel.is_cancelled() {
            return Err(SynthesisError::Cancelled);
        }

        // Phase 1b: merge candidates — Γ/Δ matrices, pruned enumeration,
        // then hub placement and exact costing of every survivor.
        let t = Instant::now();
        let alloc0 = ccs_obs::alloc::stats();
        let profile_phase = ccs_obs::profile::scope("matrices");
        let matrices = DistanceMatrices::compute(graph);
        drop(profile_phase);
        phase_alloc_counters("matrices", &alloc0);
        timings.matrices = t.elapsed();

        let t = Instant::now();
        let alloc0 = ccs_obs::alloc::stats();
        let profile_phase = ccs_obs::profile::scope("merging");
        let enumeration = enumerate_with(graph, library, &matrices, &self.config.merge, &exec);
        drop(profile_phase);
        phase_alloc_counters("merging", &alloc0);
        timings.merging = t.elapsed();
        cpu.merging = enumeration.stats.exec.busy;
        if cancel.is_cancelled() {
            return Err(SynthesisError::Cancelled);
        }

        // Hub placement fans out per surviving subset; the shared cache
        // memoizes per-demand placement weights across subsets and
        // workers. Infeasibility/dominance accounting folds the ordered
        // results serially, so counts and kept candidates match a
        // serial run exactly.
        let t = Instant::now();
        let alloc0 = ccs_obs::alloc::stats();
        let profile_phase = ccs_obs::profile::scope("placement");
        let subsets: Vec<&Vec<usize>> = enumeration.all_subsets().collect();
        let cache: Arc<PlacementCache> = self
            .config
            .shared_cache
            .clone()
            .unwrap_or_else(|| Arc::new(PlacementCache::new()));
        let cache = &*cache;
        // Lower-bound gate: a subset whose cheap geometric bound already
        // reaches the dominance threshold below cannot yield a kept
        // candidate (any real solve costs at least the bound), so the
        // Weber/two-hub iteration is skipped outright. The decision is a
        // pure function of the subset, so it is thread-count invariant.
        enum Placed {
            Gated { lb: f64, member_sum: f64 },
            Done(Result<Candidate, InfeasibleReason>),
            Reused(Verdict),
        }
        let lb_gate = self.config.merge.lb_gate && !self.config.keep_dominated;
        let (placed, placement_exec) = {
            let verdicts = session.as_deref().map(|s| &s.verdicts);
            exec.par_map_stats(&subsets, |_, s| {
                if cancel.is_cancelled() {
                    return Err(SynthesisError::Cancelled);
                }
                if let Some(m) = verdicts {
                    let key: Vec<u32> = s.iter().map(|&i| i as u32).collect();
                    if let Some(v) = m.get(&key[..]) {
                        return Ok(Placed::Reused(v.clone()));
                    }
                }
                if lb_gate {
                    // One profiler call per subset, independent of chunking.
                    let _profile = ccs_obs::profile::scope("lb_gate");
                    let lb = merge_cost_lower_bound(graph, library, s, cache);
                    let member_sum: f64 = s.iter().map(|&i| candidates[i].cost).sum();
                    if lb >= member_sum * (1.0 - 1e-6) - 1e-12 {
                        return Ok(Placed::Gated { lb, member_sum });
                    }
                }
                merge_candidate_explained(graph, library, s, cache).map(Placed::Done)
            })
        };
        let ledger_on = ledger::enabled();
        let subset_arcs = |s: &[usize]| -> Vec<u32> { s.iter().map(|&i| i as u32).collect() };
        let mut infeasible = 0usize;
        let mut dominated = 0usize;
        let mut lb_gated = 0usize;
        let mut verdicts_reused = 0u64;
        for (subset, r) in subsets.iter().zip(placed) {
            // Normalize fresh solves and cache hits into one verdict so
            // the counting and candidate-push order below is literally
            // the same code on both paths.
            let (verdict, reused) = match r? {
                Placed::Gated { lb, member_sum } => (Verdict::Gated { lb, member_sum }, false),
                Placed::Done(Err(reason)) => (Verdict::Infeasible(reason), false),
                Placed::Done(Ok(c)) => {
                    // Hub placement converges to ~1e-9; savings below a
                    // relative 1e-6 are numerical noise, not real wins.
                    let member_sum: f64 = subset.iter().map(|&i| candidates[i].cost).sum();
                    if !self.config.keep_dominated && c.cost >= member_sum * (1.0 - 1e-6) - 1e-12 {
                        (
                            Verdict::Dominated {
                                cost: c.cost,
                                member_sum,
                            },
                            false,
                        )
                    } else {
                        (Verdict::Kept(c), false)
                    }
                }
                Placed::Reused(v) => (v, true),
            };
            verdicts_reused += u64::from(reused);
            if warm && !reused {
                if let Some(s) = session.as_deref_mut() {
                    s.verdicts
                        .insert(subset_arcs(subset).into_boxed_slice(), verdict.clone());
                }
            }
            match verdict {
                Verdict::Gated { lb, member_sum } => {
                    lb_gated += 1;
                    if ledger_on {
                        let cause = if reused {
                            Cause::ResynthReused
                        } else {
                            Cause::PlacementLbGated
                        };
                        ledger::emit(DecisionEvent::new(
                            cause,
                            subset_arcs(subset),
                            lb,
                            member_sum,
                            format!("k={}", subset.len()),
                        ));
                    }
                }
                Verdict::Infeasible(reason) => {
                    infeasible += 1;
                    if ledger_on {
                        let cause = if reused {
                            Cause::ResynthReused
                        } else {
                            Cause::PlacementInfeasible
                        };
                        ledger::emit(DecisionEvent::new(
                            cause,
                            subset_arcs(subset),
                            0.0,
                            0.0,
                            format!("k={},{}", subset.len(), reason.id()),
                        ));
                    }
                }
                Verdict::Dominated { cost, member_sum } => {
                    dominated += 1;
                    if ledger_on {
                        let cause = if reused {
                            Cause::ResynthReused
                        } else {
                            Cause::PlacementDominated
                        };
                        ledger::emit(DecisionEvent::new(
                            cause,
                            subset_arcs(subset),
                            cost,
                            member_sum,
                            format!("k={}", subset.len()),
                        ));
                    }
                }
                Verdict::Kept(c) => {
                    if ledger_on {
                        // `index` is the candidate-slice position the
                        // covering phase (and its ledger events) will
                        // refer to.
                        let cause = if reused {
                            Cause::ResynthReused
                        } else {
                            Cause::PlacementKept
                        };
                        let member_sum: f64 = subset.iter().map(|&i| candidates[i].cost).sum();
                        ledger::emit(DecisionEvent::new(
                            cause,
                            subset_arcs(subset),
                            c.cost,
                            member_sum,
                            format!("k={},index={}", subset.len(), candidates.len()),
                        ));
                    }
                    candidates.push(c);
                }
            }
        }
        // Each un-gated subset costs one Weber solve plus, when mux and
        // demux are both on offer, one two-hub solve — a library-global
        // fact, so the skip count is deterministic.
        let has_muxdemux = library.node_cost(NodeKind::Mux).is_some()
            && library.node_cost(NodeKind::Demux).is_some();
        let has_switch = library.node_cost(NodeKind::Switch).is_some();
        let solves_per_subset: u64 = if has_muxdemux {
            2
        } else {
            u64::from(has_switch)
        };
        let solves_skipped = lb_gated as u64 * solves_per_subset;
        drop(profile_phase);
        phase_alloc_counters("placement", &alloc0);
        timings.placement = t.elapsed();
        cpu.placement = placement_exec.busy;
        ccs_obs::counter("placement.infeasible_merges", infeasible as u64);
        ccs_obs::counter("placement.dominated_dropped", dominated as u64);
        ccs_obs::counter("placement.lb_gated", lb_gated as u64);
        ccs_obs::counter("placement.solves_skipped", solves_skipped);

        if cancel.is_cancelled() {
            return Err(SynthesisError::Cancelled);
        }

        // Phase 2: weighted unate covering.
        let t = Instant::now();
        let alloc0 = ccs_obs::alloc::stats();
        let profile_phase = ccs_obs::profile::scope("covering");
        // A warm run seeds the exact solver with the previous cover,
        // mapped from arc lists to this run's column indices (arc lists
        // are unique across candidates: p2p columns are singletons in
        // arc order, merge subsets are distinct by enumeration). A
        // selection that no longer maps — or no longer covers — is
        // rejected by the solver's seed validation, never trusted.
        let prev_cols: Option<Vec<usize>> = session
            .as_deref()
            .and_then(|s| s.prev_selected.as_ref())
            .map(|prev| {
                let by_arcs: HashMap<&[usize], usize> = candidates
                    .iter()
                    .enumerate()
                    .map(|(i, c)| (c.arcs.as_slice(), i))
                    .collect();
                prev.iter()
                    .filter_map(|arcs| by_arcs.get(arcs.as_slice()).copied())
                    .collect()
            });
        let outcome = select_seeded_on(
            &candidates,
            graph.arc_count(),
            self.config.cover,
            prev_cols.as_deref(),
            &exec,
        )?;
        let selected: Vec<Candidate> = outcome
            .selected
            .iter()
            .map(|&i| candidates[i].clone())
            .collect();
        drop(profile_phase);
        phase_alloc_counters("covering", &alloc0);
        timings.covering = t.elapsed();

        // Assemble the architecture.
        let t = Instant::now();
        let alloc0 = ccs_obs::alloc::stats();
        let profile_phase = ccs_obs::profile::scope("assembly");
        let implementation = ImplementationGraph::build(graph, library, &selected);
        drop(profile_phase);
        phase_alloc_counters("assembly", &alloc0);
        timings.assembly = t.elapsed();
        drop(profile_run);

        let elapsed = start.elapsed();
        let mut exec_total = ExecStats::default();
        exec_total.merge(&p2p_exec);
        exec_total.merge(&enumeration.stats.exec);
        exec_total.merge(&placement_exec);
        if ccs_obs::enabled() {
            for (name, wall) in timings.phases() {
                ccs_obs::record_span(name, wall);
            }
            for (name, busy) in cpu.phases() {
                ccs_obs::record_span(name, busy);
            }
            ccs_obs::record_span("total", elapsed);
            ccs_obs::gauge("exec.threads", threads as f64);
        }

        // Persist this run's state for the next warm re-synthesis. The
        // first `arc_count` candidates are exactly the per-arc p2p
        // columns; the k = 2 survivors are the merge-neighborhood
        // adjacency used for the dirty-region counter.
        if let Some(state) = session {
            state.p2p = candidates[..graph.arc_count()]
                .iter()
                .cloned()
                .map(Some)
                .collect();
            state.prev_selected = Some(selected.iter().map(|c| c.arcs.clone()).collect());
            state.pairs = enumeration
                .all_subsets()
                .filter(|s| s.len() == 2)
                .map(|s| (s[0] as u32, s[1] as u32))
                .collect();
        }
        if warm && ccs_obs::enabled() {
            ccs_obs::counter("resynth.p2p_reused", p2p_reused);
            ccs_obs::counter("resynth.verdicts_reused", verdicts_reused);
        }

        let mut stats = SynthesisStats {
            arc_count: graph.arc_count(),
            p2p_cost,
            counters: run_counters(
                &enumeration.stats,
                infeasible,
                dominated,
                lb_gated,
                solves_skipped,
                &outcome,
                threads,
                &exec_total,
            ),
            merge_stats: enumeration.stats,
            infeasible_merges: infeasible,
            dominated_dropped: dominated,
            lb_gated,
            solves_skipped,
            ucp_cols: outcome.cols,
            ucp_rows: outcome.rows,
            ucp_stats: outcome.stats,
            elapsed,
            phase_timings: timings,
            phase_cpu: cpu,
            threads,
        };
        if warm {
            // Reuse counts are pure functions of the edit and the
            // previous state, so they belong in the deterministic map.
            stats
                .counters
                .insert("resynth.p2p_reused".to_string(), p2p_reused);
            stats
                .counters
                .insert("resynth.verdicts_reused".to_string(), verdicts_reused);
        }
        Ok(SynthesisResult {
            implementation,
            selected,
            candidates,
            matrices,
            stats,
        })
    }
}

/// One edit applied by [`SynthesisSession::resynthesize`]. Arcs are
/// addressed by index (insertion order, the same indices reports and
/// ledger events use); ports by name. No edit adds or removes arcs, so
/// arc indices are stable across the life of a session.
#[derive(Debug, Clone)]
pub enum Edit {
    /// Change the required bandwidth of an arc.
    ArcRate {
        /// Arc index.
        arc: usize,
        /// New required bandwidth (must be positive).
        bandwidth: Bandwidth,
    },
    /// Change (or clear, with `None`) the hop bound of an arc.
    ArcBound {
        /// Arc index.
        arc: usize,
        /// New hop bound; `None` removes the bound.
        max_hops: Option<u32>,
    },
    /// Move the named module/port to a new position (dirties every
    /// incident arc — their distances, and thus every candidate that
    /// contains them, change).
    MovePort {
        /// Port name as given to the builder.
        port: String,
        /// New position in application units.
        position: Point2,
    },
    /// Replace the component library. Every cached candidate priced
    /// against the old library is invalidated, and the session swaps in
    /// a fresh placement cache (a cache must never be shared across
    /// libraries).
    SetLibrary(Library),
}

/// A cached placement outcome for one merge subset: the classification
/// the serial accounting fold would reach, plus the data its ledger
/// event and counters need. Pure function of the member arcs and the
/// library, so it stays valid exactly until one of those changes.
#[derive(Debug, Clone)]
enum Verdict {
    /// Skipped by the lower-bound gate.
    Gated { lb: f64, member_sum: f64 },
    /// Structurally infeasible with this library.
    Infeasible(InfeasibleReason),
    /// Solved, but never cheaper than its members' p2p sum.
    Dominated { cost: f64, member_sum: f64 },
    /// Solved and kept as a covering column.
    Kept(Candidate),
}

/// Persistent warm-start state of a [`SynthesisSession`], keyed by
/// subset signature (the sorted member-arc indices as `u32`, matching
/// the flat arenas of [`crate::bits`]).
#[derive(Debug, Default)]
struct SessionState {
    /// Cached point-to-point candidate per arc; `None` marks a dirty
    /// arc awaiting recompute.
    p2p: Vec<Option<Candidate>>,
    /// Cached placement verdict per surviving merge subset.
    verdicts: HashMap<Box<[u32]>, Verdict>,
    /// Arc lists of the previous cover — the seed for the next exact
    /// solve. Kept even across edits: the solver re-validates the seed
    /// against the new matrix and ignores it when it no longer covers.
    prev_selected: Option<Vec<Vec<usize>>>,
    /// The k = 2 merge survivors of the previous run: the
    /// merge-neighborhood adjacency from which the dirty region of an
    /// edit is measured.
    pairs: Vec<(u32, u32)>,
}

/// An incremental re-synthesis session: owns a constraint graph and a
/// library, and re-runs the pipeline after edits while reusing every
/// cached result the edit provably did not touch.
///
/// Reuse is *invisible in the results*: a warm
/// [`resynthesize`](Self::resynthesize) returns bit-identical
/// implementation, selection, and candidates to a cold
/// [`Synthesizer::run`] on the same (edited) instance, at every thread
/// count. What changes is the work: clean arcs skip their p2p solve,
/// clean merge subsets skip hub placement, and the covering solver is
/// warm-started from the previous cover (see
/// [`ccs_covering::CoverMatrix::solve_exact_seeded`] for why the seed
/// cannot change the answer).
///
/// Invalidation is edit-driven, before the run: an arc-rate or
/// hop-bound edit dirties that arc; a port move dirties every incident
/// arc; a library swap dirties everything. A cached entry is dropped
/// iff its member set intersects the dirty arcs (or the library
/// changed); each drop is recorded in the decision ledger under
/// `resynth.invalidated`, each reuse under `resynth.reused`.
///
/// # Examples
///
/// ```
/// use ccs_core::synthesis::{Edit, SynthesisConfig, SynthesisSession};
/// use ccs_core::library::wan_paper_library;
/// use ccs_core::units::Bandwidth;
/// # use ccs_core::constraint::ConstraintGraph;
/// # use ccs_geom::{Norm, Point2};
/// # let mut b = ConstraintGraph::builder(Norm::Euclidean);
/// # let s = b.add_port("s", Point2::new(0.0, 0.0));
/// # let t = b.add_port("t", Point2::new(10.0, 0.0));
/// # b.add_channel(s, t, Bandwidth::from_mbps(5.0)).unwrap();
/// # let graph = b.build().unwrap();
/// let mut session =
///     SynthesisSession::new(graph, wan_paper_library(), SynthesisConfig::default());
/// let cold = session.resynthesize(&[])?; // first run populates the caches
/// let warm = session.resynthesize(&[Edit::ArcRate {
///     arc: 0,
///     bandwidth: Bandwidth::from_mbps(7.5),
/// }])?;
/// assert_eq!(warm.stats.arc_count, cold.stats.arc_count);
/// # Ok::<(), ccs_core::error::SynthesisError>(())
/// ```
#[derive(Debug)]
pub struct SynthesisSession {
    graph: ConstraintGraph,
    library: Library,
    config: SynthesisConfig,
    state: SessionState,
}

impl SynthesisSession {
    /// Creates a session over an instance. The first
    /// [`resynthesize`](Self::resynthesize) call is a cold run that
    /// populates the caches. When `config` carries no
    /// [`shared_cache`](SynthesisConfig::shared_cache), the session
    /// installs a private one so placement solves persist across edits.
    pub fn new(graph: ConstraintGraph, library: Library, mut config: SynthesisConfig) -> Self {
        if config.shared_cache.is_none() {
            config.shared_cache = Some(Arc::new(PlacementCache::new()));
        }
        SynthesisSession {
            graph,
            library,
            config,
            state: SessionState::default(),
        }
    }

    /// The current (post-edit) constraint graph.
    pub fn graph(&self) -> &ConstraintGraph {
        &self.graph
    }

    /// The current library.
    pub fn library(&self) -> &Library {
        &self.library
    }

    /// The session configuration. Immutable by design: changing pruning
    /// or covering knobs mid-session would invalidate every cached
    /// verdict, so a new configuration means a new session. The cancel
    /// token is the exception — see [`set_cancel`](Self::set_cancel).
    pub fn config(&self) -> &SynthesisConfig {
        &self.config
    }

    /// Replaces the cancel token polled by subsequent runs (a served
    /// session needs a fresh token per request). Cancellation identity
    /// has no effect on results, so this cannot stale any cache.
    pub fn set_cancel(&mut self, cancel: CancelToken) {
        self.config.cancel = cancel;
    }

    /// Applies `edits` and re-runs the pipeline warm.
    ///
    /// An empty edit list re-synthesizes the unchanged instance (the
    /// second such call reuses everything and is dominated by the
    /// covering solve). On [`SynthesisError::InvalidEdit`] the session
    /// is left exactly as it was — edits are validated against copies
    /// and committed only when the edited instance builds.
    ///
    /// # Errors
    ///
    /// [`SynthesisError::InvalidEdit`] for an unknown arc index or port
    /// name, or when the edited instance fails graph validation (zero
    /// bandwidth, coincident ports, zero hop bound); otherwise the same
    /// errors as [`Synthesizer::run`].
    pub fn resynthesize(&mut self, edits: &[Edit]) -> Result<SynthesisResult, SynthesisError> {
        self.apply_edits(edits)?;
        Synthesizer {
            graph: &self.graph,
            library: &self.library,
            config: self.config.clone(),
        }
        .run_impl(Some(&mut self.state))
    }

    /// Validates and commits `edits`, then drops every cached entry the
    /// edit could have touched. Runs inside the caller's observability
    /// scope: emits `resynth.*` counters (edit, dirty-region, and
    /// invalidation tallies) and one `resynth.invalidated` ledger event
    /// per dropped entry. Serial, so ledger and counters are identical
    /// at every thread count.
    fn apply_edits(&mut self, edits: &[Edit]) -> Result<(), SynthesisError> {
        let n = self.graph.arc_count();
        let mut dirty = vec![false; n];
        let mut library_changed = false;
        if !edits.is_empty() {
            // Work on copies; commit only after the rebuilt graph
            // validates, so a bad edit leaves the session untouched.
            let mut ports: Vec<Port> = self.graph.ports().map(|(_, p)| p.clone()).collect();
            let mut arcs: Vec<Channel> = self.graph.arcs().map(|(_, a)| *a).collect();
            let mut library = None;
            for e in edits {
                match e {
                    Edit::ArcRate { arc, bandwidth } => {
                        let a = arcs.get_mut(*arc).ok_or_else(|| {
                            SynthesisError::InvalidEdit(format!("unknown arc {arc}"))
                        })?;
                        a.bandwidth = *bandwidth;
                        dirty[*arc] = true;
                    }
                    Edit::ArcBound { arc, max_hops } => {
                        let a = arcs.get_mut(*arc).ok_or_else(|| {
                            SynthesisError::InvalidEdit(format!("unknown arc {arc}"))
                        })?;
                        a.max_hops = *max_hops;
                        dirty[*arc] = true;
                    }
                    Edit::MovePort { port, position } => {
                        let idx = ports.iter().position(|p| p.name == *port).ok_or_else(|| {
                            SynthesisError::InvalidEdit(format!("unknown port {port:?}"))
                        })?;
                        ports[idx].position = *position;
                        let pid = PortId(idx as u32);
                        for (i, a) in arcs.iter().enumerate() {
                            if a.src == pid || a.dst == pid {
                                dirty[i] = true;
                            }
                        }
                    }
                    Edit::SetLibrary(lib) => {
                        library = Some(lib.clone());
                        library_changed = true;
                    }
                }
            }
            // Rebuild through the builder: recomputes arc distances
            // from the (possibly moved) positions and re-runs full
            // validation. Insertion order is preserved, so every port
            // and arc keeps its index.
            let mut b = ConstraintGraph::builder(self.graph.norm());
            let pids: Vec<PortId> = ports
                .iter()
                .map(|p| b.add_port(p.name.clone(), p.position))
                .collect();
            for a in &arcs {
                b.add_channel_limited(
                    pids[a.src.index()],
                    pids[a.dst.index()],
                    a.bandwidth,
                    a.max_hops,
                )
                .map_err(|e| SynthesisError::InvalidEdit(e.to_string()))?;
            }
            self.graph = b
                .build()
                .map_err(|e| SynthesisError::InvalidEdit(e.to_string()))?;
            if let Some(lib) = library {
                self.library = lib;
            }
        }

        let ledger_on = ledger::enabled();
        let mut invalidated = 0u64;
        if library_changed {
            for (i, slot) in self.state.p2p.iter_mut().enumerate() {
                if slot.take().is_some() {
                    invalidated += 1;
                    if ledger_on {
                        ledger::emit(DecisionEvent::new(
                            Cause::ResynthInvalidated,
                            vec![i as u32],
                            0.0,
                            0.0,
                            "p2p,library".to_string(),
                        ));
                    }
                }
            }
            self.state.p2p.clear();
            for (key, _) in self.state.verdicts.drain() {
                invalidated += 1;
                if ledger_on {
                    ledger::emit(DecisionEvent::new(
                        Cause::ResynthInvalidated,
                        key.to_vec(),
                        0.0,
                        0.0,
                        "merge,library".to_string(),
                    ));
                }
            }
            // Cached placement rates are functions of the library; a
            // swapped library gets a fresh cache.
            self.config.shared_cache = Some(Arc::new(PlacementCache::new()));
        } else {
            for (i, d) in dirty.iter().enumerate() {
                if !*d {
                    continue;
                }
                if let Some(slot) = self.state.p2p.get_mut(i) {
                    if slot.take().is_some() {
                        invalidated += 1;
                        if ledger_on {
                            ledger::emit(DecisionEvent::new(
                                Cause::ResynthInvalidated,
                                vec![i as u32],
                                0.0,
                                0.0,
                                "p2p,edit".to_string(),
                            ));
                        }
                    }
                }
            }
            self.state.verdicts.retain(|key, _| {
                let hit = key.iter().any(|&a| dirty[a as usize]);
                if hit {
                    invalidated += 1;
                    if ledger_on {
                        ledger::emit(DecisionEvent::new(
                            Cause::ResynthInvalidated,
                            key.to_vec(),
                            0.0,
                            0.0,
                            "merge,edit".to_string(),
                        ));
                    }
                }
                !hit
            });
        }

        if ccs_obs::enabled() {
            // The dirty region: edited arcs plus their merge neighbors
            // (the locality bound on how far an edit propagates).
            let dirty_count = dirty.iter().filter(|&&d| d).count();
            let mut region = dirty.clone();
            for &(a, b) in &self.state.pairs {
                if dirty[a as usize] {
                    region[b as usize] = true;
                }
                if dirty[b as usize] {
                    region[a as usize] = true;
                }
            }
            let region_count = region.iter().filter(|&&d| d).count();
            ccs_obs::counter("resynth.edits", edits.len() as u64);
            ccs_obs::counter("resynth.dirty_arcs", dirty_count as u64);
            ccs_obs::counter("resynth.region_arcs", region_count as u64);
            ccs_obs::counter("resynth.invalidated", invalidated);
        }
        Ok(())
    }
}

/// Emits the phase's allocation delta (`alloc.<phase>.allocs` /
/// `alloc.<phase>.bytes`) to the global recorder. A no-op when no
/// recorder is installed; zeros when the binary runs without the
/// counting allocator. These counters are scheduling-dependent (workers
/// allocate queues and buffers), so they stay out of the deterministic
/// [`SynthesisStats::counters`] map.
fn phase_alloc_counters(phase: &str, before: &ccs_obs::alloc::AllocStats) {
    if ccs_obs::enabled() {
        let delta = ccs_obs::alloc::stats().delta_since(before);
        ccs_obs::counter(&format!("alloc.{phase}.allocs"), delta.allocs);
        ccs_obs::counter(&format!("alloc.{phase}.bytes"), delta.alloc_bytes);
    }
}

/// Builds the deterministic per-run counter map of
/// [`SynthesisStats::counters`] from the phase outputs (names mirror
/// the [`ccs_obs`] counter stream).
#[allow(clippy::too_many_arguments)] // internal aggregation, not public API
fn run_counters(
    merge_stats: &MergeStats,
    infeasible: usize,
    dominated: usize,
    lb_gated: usize,
    solves_skipped: u64,
    outcome: &crate::cover::CoverOutcome,
    threads: usize,
    exec_total: &ccs_exec::ExecStats,
) -> BTreeMap<String, u64> {
    let mut c = BTreeMap::new();
    c.insert("p2p.candidates".to_string(), outcome.rows as u64);
    // Both are fixed for a given thread count; steal counts and queue
    // depths are scheduling-dependent and stay out of this map.
    c.insert("exec.threads".to_string(), threads as u64);
    c.insert("exec.tasks".to_string(), exec_total.tasks);
    for l in &merge_stats.levels {
        let k = l.k;
        c.insert(format!("merging.k{k}.examined"), l.examined);
        c.insert(format!("merging.k{k}.geometry_pruned"), l.geometry_pruned);
        c.insert(format!("merging.k{k}.bandwidth_pruned"), l.bandwidth_pruned);
        c.insert(format!("merging.k{k}.survivors"), l.survivors);
        c.insert(format!("merging.k{k}.deactivated"), l.deactivated);
    }
    c.insert("placement.infeasible_merges".to_string(), infeasible as u64);
    c.insert("placement.dominated_dropped".to_string(), dominated as u64);
    c.insert("placement.lb_gated".to_string(), lb_gated as u64);
    c.insert("placement.solves_skipped".to_string(), solves_skipped);
    c.insert("covering.rows".to_string(), outcome.rows as u64);
    c.insert("covering.cols".to_string(), outcome.cols as u64);
    if let Some(s) = &outcome.stats {
        c.insert("covering.bnb_nodes".to_string(), s.nodes);
        c.insert("covering.essentials".to_string(), s.essentials);
        c.insert(
            "covering.dominated_columns".to_string(),
            s.dominated_columns,
        );
        c.insert("covering.dominated_rows".to_string(), s.dominated_rows);
        c.insert("covering.bound_prunes".to_string(), s.bound_prunes);
        c.insert(
            "covering.incumbent_updates".to_string(),
            s.incumbent_updates,
        );
        // Subtree fan-out and fold-level bound improvements are fixed by
        // the instance and thread-count-invariant; per-worker steal
        // counts are scheduling-dependent and stay out of this map.
        c.insert("covering.subtrees".to_string(), s.subtrees);
        c.insert(
            "covering.shared_bound_tightenings".to_string(),
            s.shared_bound_tightenings,
        );
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::verify;
    use crate::library::{wan_paper_library, Library, Link, NodeKind};
    use crate::units::Bandwidth;
    use ccs_geom::{Norm, Point2};

    fn mbps(x: f64) -> Bandwidth {
        Bandwidth::from_mbps(x)
    }

    /// Three channels from a cluster to a far node plus one unrelated
    /// channel — merging the cluster should win.
    fn cluster_instance() -> ConstraintGraph {
        let mut b = ConstraintGraph::builder(Norm::Euclidean);
        let a = b.add_port("A", Point2::new(0.0, 0.0));
        let c = b.add_port("B", Point2::new(5.0, 0.0));
        let e = b.add_port("C", Point2::new(-2.8, 4.6));
        let d = b.add_port("D", Point2::new(64.8, 76.4));
        let x = b.add_port("X", Point2::new(200.0, 0.0));
        let y = b.add_port("Y", Point2::new(203.0, 0.0));
        b.add_channel(a, d, mbps(10.0)).unwrap();
        b.add_channel(c, d, mbps(10.0)).unwrap();
        b.add_channel(e, d, mbps(10.0)).unwrap();
        b.add_channel(x, y, mbps(10.0)).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn end_to_end_beats_p2p_and_verifies() {
        let g = cluster_instance();
        let lib = wan_paper_library();
        let r = Synthesizer::new(&g, &lib).run().unwrap();
        assert!(r.total_cost() < r.stats.p2p_cost, "merging should pay off");
        assert!(r.saving_vs_p2p() > 0.0);
        assert!(verify(&g, &lib, &r.implementation).is_empty());
        // Every arc covered exactly by the selection.
        let mut covered = [false; 4];
        for c in &r.selected {
            for &a in &c.arcs {
                covered[a] = true;
            }
        }
        assert!(covered.iter().all(|&x| x));
    }

    #[test]
    fn merged_trio_is_selected() {
        let g = cluster_instance();
        let lib = wan_paper_library();
        let r = Synthesizer::new(&g, &lib).run().unwrap();
        // The three clustered channels share one merge candidate.
        assert!(
            r.selected.iter().any(|c| c.arcs == vec![0, 1, 2]),
            "expected 3-way merge in {:?}",
            r.selected
                .iter()
                .map(|c| c.arcs.clone())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn anytime_cover_matches_exact_with_budget() {
        let g = cluster_instance();
        let lib = wan_paper_library();
        let exact = Synthesizer::new(&g, &lib).run().unwrap();
        let cfg = SynthesisConfig {
            cover: CoverStrategy::Anytime {
                node_limit: 1 << 20,
            },
            ..SynthesisConfig::default()
        };
        let any = Synthesizer::new(&g, &lib).with_config(cfg).run().unwrap();
        assert!((any.total_cost() - exact.total_cost()).abs() < 1e-6);
        assert!(any.stats.ucp_stats.expect("stats present").proven_optimal);
    }

    #[test]
    fn greedy_cover_is_no_better_than_exact() {
        let g = cluster_instance();
        let lib = wan_paper_library();
        let exact = Synthesizer::new(&g, &lib).run().unwrap();
        let cfg = SynthesisConfig {
            cover: CoverStrategy::Greedy,
            ..SynthesisConfig::default()
        };
        let greedy = Synthesizer::new(&g, &lib).with_config(cfg).run().unwrap();
        assert!(greedy.total_cost() >= exact.total_cost() - 1e-6);
        assert!(greedy.stats.ucp_stats.is_none());
    }

    #[test]
    fn keep_dominated_increases_columns_not_cost() {
        let g = cluster_instance();
        let lib = wan_paper_library();
        let lean = Synthesizer::new(&g, &lib).run().unwrap();
        let cfg = SynthesisConfig {
            keep_dominated: true,
            ..SynthesisConfig::default()
        };
        let fat = Synthesizer::new(&g, &lib).with_config(cfg).run().unwrap();
        assert!(fat.stats.ucp_cols >= lean.stats.ucp_cols);
        assert!((fat.total_cost() - lean.total_cost()).abs() < 1e-6);
    }

    #[test]
    fn stats_are_coherent() {
        let g = cluster_instance();
        let lib = wan_paper_library();
        let r = Synthesizer::new(&g, &lib).run().unwrap();
        assert_eq!(r.stats.arc_count, 4);
        assert_eq!(r.stats.ucp_rows, 4);
        assert_eq!(r.stats.ucp_cols, r.candidates.len());
        assert!(r.stats.p2p_cost > 0.0);
        // The far pair (arc 3) never merges: deactivated at level 2.
        assert_eq!(r.stats.merge_stats.deactivated_at[3], Some(2));
    }

    #[test]
    fn assumption_check_passes_on_paper_library() {
        let g = cluster_instance();
        let lib = wan_paper_library();
        let cfg = SynthesisConfig {
            check_assumption: true,
            ..SynthesisConfig::default()
        };
        let r = Synthesizer::new(&g, &lib).with_config(cfg).run();
        assert!(r.is_ok());
    }

    #[test]
    fn infeasible_arc_propagates() {
        // A library with only a short link and no repeater cannot span
        // the channels.
        let lib = Library::builder()
            .link(Link::per_length_capped("short", mbps(100.0), 0.5, 1.0))
            .node(NodeKind::Mux, 0.0)
            .node(NodeKind::Demux, 0.0)
            .build()
            .unwrap();
        let g = cluster_instance();
        let err = Synthesizer::new(&g, &lib).run().unwrap_err();
        assert!(matches!(err, SynthesisError::MissingRepeater(_)));
    }

    #[test]
    fn hop_bounds_disable_merging_and_still_verify() {
        // Three clustered channels that would merge (branch + trunk = 2
        // hops each) are pinned to one hop: the merge candidate becomes
        // infeasible and everything stays point-to-point.
        let mut b = ConstraintGraph::builder(Norm::Euclidean);
        let a = b.add_port("A", Point2::new(0.0, 0.0));
        let c = b.add_port("B", Point2::new(5.0, 0.0));
        let e = b.add_port("C", Point2::new(-2.8, 4.6));
        let d = b.add_port("D", Point2::new(64.8, 76.4));
        for src in [a, c, e] {
            b.add_channel_limited(src, d, mbps(10.0), Some(1)).unwrap();
        }
        let g = b.build().unwrap();
        let lib = wan_paper_library();
        let r = Synthesizer::new(&g, &lib).run().unwrap();
        assert_eq!(r.total_cost(), r.stats.p2p_cost);
        assert!(r
            .selected
            .iter()
            .all(|c| matches!(c.kind, crate::placement::CandidateKind::PointToPoint)));
        assert!(crate::check::verify(&g, &lib, &r.implementation).is_empty());

        // With a 2-hop budget the merge is allowed again (branch + trunk).
        let mut b2 = ConstraintGraph::builder(Norm::Euclidean);
        let a2 = b2.add_port("A", Point2::new(0.0, 0.0));
        let c2 = b2.add_port("B", Point2::new(5.0, 0.0));
        let e2 = b2.add_port("C", Point2::new(-2.8, 4.6));
        let d2 = b2.add_port("D", Point2::new(64.8, 76.4));
        for src in [a2, c2, e2] {
            b2.add_channel_limited(src, d2, mbps(10.0), Some(2))
                .unwrap();
        }
        let g2 = b2.build().unwrap();
        let r2 = Synthesizer::new(&g2, &lib).run().unwrap();
        assert!(r2.total_cost() < r2.stats.p2p_cost);
        assert!(crate::check::verify(&g2, &lib, &r2.implementation).is_empty());
    }

    #[test]
    fn lb_gate_skips_pair_solves_without_changing_results() {
        let g = cluster_instance();
        let lib = wan_paper_library();
        let gated = Synthesizer::new(&g, &lib).run().unwrap();
        // Equal-bandwidth pairs have no economy of scale (λ = 1), so
        // every surviving pair is gated; mux + demux on offer means two
        // solves avoided per gated subset.
        assert!(gated.stats.lb_gated > 0, "gate should fire");
        assert_eq!(gated.stats.solves_skipped, gated.stats.lb_gated as u64 * 2);
        let cfg = SynthesisConfig {
            merge: MergeConfig {
                lb_gate: false,
                ..MergeConfig::default()
            },
            ..SynthesisConfig::default()
        };
        let ungated = Synthesizer::new(&g, &lib).with_config(cfg).run().unwrap();
        assert_eq!(ungated.stats.lb_gated, 0);
        assert_eq!(ungated.stats.solves_skipped, 0);
        // Gating only reclassifies subsets the dominance/infeasibility
        // filters would discard after the solve — never the kept ones.
        assert_eq!(
            gated.stats.lb_gated + gated.stats.infeasible_merges + gated.stats.dominated_dropped,
            ungated.stats.infeasible_merges + ungated.stats.dominated_dropped
        );
        let arcs = |r: &SynthesisResult| {
            r.selected
                .iter()
                .map(|c| c.arcs.clone())
                .collect::<Vec<_>>()
        };
        assert_eq!(arcs(&gated), arcs(&ungated));
        assert_eq!(gated.total_cost(), ungated.total_cost());
        assert_eq!(gated.candidates.len(), ungated.candidates.len());
    }

    #[test]
    fn keep_dominated_disables_the_gate() {
        let g = cluster_instance();
        let lib = wan_paper_library();
        let cfg = SynthesisConfig {
            keep_dominated: true,
            ..SynthesisConfig::default()
        };
        let r = Synthesizer::new(&g, &lib).with_config(cfg).run().unwrap();
        // With dominated candidates kept, every solve must actually run.
        assert_eq!(r.stats.lb_gated, 0);
        assert_eq!(r.stats.solves_skipped, 0);
    }

    #[test]
    fn cancelled_token_aborts_with_no_result() {
        let g = cluster_instance();
        let lib = wan_paper_library();
        let cfg = SynthesisConfig::default();
        cfg.cancel.cancel();
        let err = Synthesizer::new(&g, &lib)
            .with_config(cfg)
            .run()
            .unwrap_err();
        assert_eq!(err, SynthesisError::Cancelled);
        assert_eq!(err.to_string(), "synthesis cancelled");
    }

    #[test]
    fn shared_cache_reuse_is_invisible_in_results() {
        let g = cluster_instance();
        let lib = wan_paper_library();
        let private = Synthesizer::new(&g, &lib).run().unwrap();
        let cache = std::sync::Arc::new(PlacementCache::new());
        let cfg = SynthesisConfig {
            shared_cache: Some(cache.clone()),
            ..SynthesisConfig::default()
        };
        // Two runs against one cache: the second hits warm entries.
        let first = Synthesizer::new(&g, &lib)
            .with_config(cfg.clone())
            .run()
            .unwrap();
        let warm = cache.len();
        assert!(warm > 0, "shared cache should be populated");
        let second = Synthesizer::new(&g, &lib).with_config(cfg).run().unwrap();
        assert_eq!(cache.len(), warm, "second run re-prices nothing");
        for r in [&first, &second] {
            assert_eq!(r.total_cost(), private.total_cost());
            assert_eq!(r.stats.counters, private.stats.counters);
            let arcs = |x: &SynthesisResult| {
                x.selected
                    .iter()
                    .map(|c| c.arcs.clone())
                    .collect::<Vec<_>>()
            };
            assert_eq!(arcs(r), arcs(&private));
        }
    }

    /// Structural equality of everything the topology report derives
    /// from: selection, candidate pool, and exact total cost bits.
    fn assert_same_result(warm: &SynthesisResult, cold: &SynthesisResult) {
        assert_eq!(warm.selected, cold.selected);
        assert_eq!(warm.candidates, cold.candidates);
        assert_eq!(warm.total_cost().to_bits(), cold.total_cost().to_bits());
        assert_eq!(warm.stats.p2p_cost.to_bits(), cold.stats.p2p_cost.to_bits());
    }

    #[test]
    fn session_warm_rerun_reuses_everything_and_matches_cold() {
        let g = cluster_instance();
        let lib = wan_paper_library();
        let cold = Synthesizer::new(&g, &lib).run().unwrap();
        let mut session = SynthesisSession::new(g.clone(), lib.clone(), SynthesisConfig::default());
        let first = session.resynthesize(&[]).unwrap();
        let second = session.resynthesize(&[]).unwrap();
        assert_same_result(&first, &cold);
        assert_same_result(&second, &cold);
        // The second run recomputed nothing.
        assert_eq!(second.stats.counters["resynth.p2p_reused"], 4);
        let total_verdicts = (second.stats.lb_gated
            + second.stats.infeasible_merges
            + second.stats.dominated_dropped) as u64
            + (second.stats.ucp_cols - second.stats.arc_count) as u64;
        assert_eq!(
            second.stats.counters["resynth.verdicts_reused"],
            total_verdicts
        );
        assert!(total_verdicts > 0, "instance should have merge subsets");
    }

    #[test]
    fn session_arc_edits_match_cold_run_on_edited_instance() {
        let g = cluster_instance();
        let lib = wan_paper_library();
        let mut session = SynthesisSession::new(g.clone(), lib.clone(), SynthesisConfig::default());
        session.resynthesize(&[]).unwrap();
        let warm = session
            .resynthesize(&[
                Edit::ArcRate {
                    arc: 3,
                    bandwidth: mbps(20.0),
                },
                Edit::ArcBound {
                    arc: 0,
                    max_hops: Some(4),
                },
            ])
            .unwrap();
        // Cold reference: the edited instance built from scratch.
        let mut b = ConstraintGraph::builder(Norm::Euclidean);
        let a = b.add_port("A", Point2::new(0.0, 0.0));
        let c = b.add_port("B", Point2::new(5.0, 0.0));
        let e = b.add_port("C", Point2::new(-2.8, 4.6));
        let d = b.add_port("D", Point2::new(64.8, 76.4));
        let x = b.add_port("X", Point2::new(200.0, 0.0));
        let y = b.add_port("Y", Point2::new(203.0, 0.0));
        b.add_channel_limited(a, d, mbps(10.0), Some(4)).unwrap();
        b.add_channel(c, d, mbps(10.0)).unwrap();
        b.add_channel(e, d, mbps(10.0)).unwrap();
        b.add_channel(x, y, mbps(20.0)).unwrap();
        let edited = b.build().unwrap();
        let cold = Synthesizer::new(&edited, &lib).run().unwrap();
        assert_same_result(&warm, &cold);
        // Arcs 1 and 2 stayed clean, so their p2p solves were reused.
        assert!(warm.stats.counters["resynth.p2p_reused"] >= 2);
        assert!(verify(session.graph(), &lib, &warm.implementation).is_empty());
    }

    #[test]
    fn session_port_move_matches_cold_run() {
        let g = cluster_instance();
        let lib = wan_paper_library();
        let mut session = SynthesisSession::new(g.clone(), lib.clone(), SynthesisConfig::default());
        session.resynthesize(&[]).unwrap();
        let new_pos = Point2::new(70.0, 70.0);
        let warm = session
            .resynthesize(&[Edit::MovePort {
                port: "D".to_string(),
                position: new_pos,
            }])
            .unwrap();
        let mut b = ConstraintGraph::builder(Norm::Euclidean);
        let a = b.add_port("A", Point2::new(0.0, 0.0));
        let c = b.add_port("B", Point2::new(5.0, 0.0));
        let e = b.add_port("C", Point2::new(-2.8, 4.6));
        let d = b.add_port("D", new_pos);
        let x = b.add_port("X", Point2::new(200.0, 0.0));
        let y = b.add_port("Y", Point2::new(203.0, 0.0));
        b.add_channel(a, d, mbps(10.0)).unwrap();
        b.add_channel(c, d, mbps(10.0)).unwrap();
        b.add_channel(e, d, mbps(10.0)).unwrap();
        b.add_channel(x, y, mbps(10.0)).unwrap();
        let edited = b.build().unwrap();
        let cold = Synthesizer::new(&edited, &lib).run().unwrap();
        assert_same_result(&warm, &cold);
        // D touches arcs 0..3; only the X→Y arc's p2p solve survives.
        assert_eq!(warm.stats.counters["resynth.p2p_reused"], 1);
    }

    #[test]
    fn session_library_swap_invalidates_everything() {
        let g = cluster_instance();
        let lib = wan_paper_library();
        let mut session = SynthesisSession::new(g.clone(), lib, SynthesisConfig::default());
        session.resynthesize(&[]).unwrap();
        // A different library: one long cheap link plus free nodes.
        let lib2 = Library::builder()
            .link(Link::per_length("fiber", mbps(200.0), 1.0))
            .node(NodeKind::Repeater, 10.0)
            .node(NodeKind::Mux, 5.0)
            .node(NodeKind::Demux, 5.0)
            .build()
            .unwrap();
        let warm = session
            .resynthesize(&[Edit::SetLibrary(lib2.clone())])
            .unwrap();
        let cold = Synthesizer::new(&g, &lib2).run().unwrap();
        assert_same_result(&warm, &cold);
        assert_eq!(warm.stats.counters["resynth.p2p_reused"], 0);
        assert_eq!(warm.stats.counters["resynth.verdicts_reused"], 0);
        assert!(verify(&g, &lib2, &warm.implementation).is_empty());
    }

    #[test]
    fn session_invalid_edit_leaves_session_intact() {
        let g = cluster_instance();
        let lib = wan_paper_library();
        let cold = Synthesizer::new(&g, &lib).run().unwrap();
        let mut session = SynthesisSession::new(g, lib, SynthesisConfig::default());
        session.resynthesize(&[]).unwrap();
        for bad in [
            Edit::ArcRate {
                arc: 99,
                bandwidth: mbps(1.0),
            },
            Edit::MovePort {
                port: "nope".to_string(),
                position: Point2::new(0.0, 0.0),
            },
            // Moving X onto Y makes arc 3 zero-length: rejected by
            // graph validation, not applied.
            Edit::MovePort {
                port: "X".to_string(),
                position: Point2::new(203.0, 0.0),
            },
        ] {
            let err = session
                .resynthesize(std::slice::from_ref(&bad))
                .unwrap_err();
            assert!(matches!(err, SynthesisError::InvalidEdit(_)), "{err}");
        }
        // The session still answers, unchanged, fully warm.
        let after = session.resynthesize(&[]).unwrap();
        assert_same_result(&after, &cold);
        assert_eq!(after.stats.counters["resynth.p2p_reused"], 4);
    }

    #[test]
    fn session_results_are_thread_count_invariant() {
        let g = cluster_instance();
        let lib = wan_paper_library();
        let run_at = |threads: usize| {
            let cfg = SynthesisConfig {
                threads,
                ..SynthesisConfig::default()
            };
            let mut session = SynthesisSession::new(g.clone(), lib.clone(), cfg);
            session.resynthesize(&[]).unwrap();
            session
                .resynthesize(&[Edit::ArcRate {
                    arc: 1,
                    bandwidth: mbps(25.0),
                }])
                .unwrap()
        };
        let t1 = run_at(1);
        let t4 = run_at(4);
        assert_same_result(&t1, &t4);
        assert_eq!(t1.stats.counters["resynth.p2p_reused"], 3);
        assert_eq!(
            t1.stats.counters["resynth.verdicts_reused"],
            t4.stats.counters["resynth.verdicts_reused"]
        );
    }

    #[test]
    fn single_channel_system_is_trivially_p2p() {
        let mut b = ConstraintGraph::builder(Norm::Euclidean);
        let s = b.add_port("s", Point2::new(0.0, 0.0));
        let t = b.add_port("t", Point2::new(10.0, 0.0));
        b.add_channel(s, t, mbps(5.0)).unwrap();
        let g = b.build().unwrap();
        let lib = wan_paper_library();
        let r = Synthesizer::new(&g, &lib).run().unwrap();
        assert_eq!(r.selected.len(), 1);
        assert_eq!(r.total_cost(), r.stats.p2p_cost);
        assert_eq!(r.candidates.len(), 1); // no merge candidates at all
    }
}

//! The end-to-end synthesis pipeline (the paper's two-phase algorithm).
//!
//! [`Synthesizer::run`] executes:
//!
//! 1. Γ/Δ matrix computation ([`crate::matrices`]);
//! 2. optimum point-to-point candidates for every arc ([`crate::p2p`],
//!    [`crate::placement`]);
//! 3. merge-candidate enumeration with the paper's pruning theorems
//!    ([`crate::merging`]);
//! 4. hub placement and exact costing of every surviving merge subset
//!    ([`crate::placement`]), with an additional *cost dominance* filter
//!    (a merging never cheaper than its members' point-to-point sum can
//!    be dropped exactly) — subsets whose cheap geometric lower bound
//!    ([`crate::placement::merge_cost_lower_bound`]) already reaches the
//!    dominance threshold skip the solve outright
//!    ([`MergeConfig::lb_gate`]);
//! 5. weighted unate covering over all candidates ([`crate::cover`]);
//! 6. assembly of the final implementation graph
//!    ([`crate::implementation`]).

use crate::constraint::ConstraintGraph;
use crate::cover::{select, CoverStrategy};
use crate::error::SynthesisError;
use crate::implementation::ImplementationGraph;
use crate::library::{Library, NodeKind};
use crate::matrices::DistanceMatrices;
use crate::merging::{enumerate_with, MergeConfig, MergeStats};
use crate::placement::{
    merge_candidate_explained, merge_cost_lower_bound, point_to_point_candidate, Candidate,
    InfeasibleReason, PlacementCache,
};
use ccs_exec::{CancelToken, ExecStats, Executor};
use ccs_obs::ledger::{self, Cause, DecisionEvent};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Tunable knobs of the pipeline. The default reproduces the paper.
#[derive(Debug, Clone, Default)]
pub struct SynthesisConfig {
    /// Merge-candidate enumeration configuration.
    pub merge: MergeConfig,
    /// Which UCP solver selects the global solution.
    pub cover: CoverStrategy,
    /// Drop merge candidates costing at least the sum of their members'
    /// point-to-point costs (exact, loses no optimality).
    pub keep_dominated: bool,
    /// Verify Assumption 2.1 before running (O(|A|²) extra work) and fail
    /// fast when the library violates it.
    pub check_assumption: bool,
    /// Worker threads for the parallel phases (p2p, merging sweeps, hub
    /// placement). `0` resolves through [`ccs_exec::default_threads`]
    /// (the `CCS_THREADS` environment variable, else the machine's
    /// available parallelism). Results are bit-identical for every
    /// thread count.
    pub threads: usize,
    /// Cooperative cancellation: the pipeline polls this token at phase
    /// boundaries and per sweep item and aborts with
    /// [`SynthesisError::Cancelled`] once it is cancelled. The default
    /// token is never cancelled.
    pub cancel: CancelToken,
    /// A placement-rate cache shared across runs (the `ccs serve`
    /// daemon reuses one per library so repeated demands are priced
    /// once per process, not once per request). Cached values are pure
    /// functions of `(library, demand)`, so sharing cannot perturb
    /// results — but a cache must only ever be shared between runs
    /// using the *same* library. `None` gives each run a private cache.
    pub shared_cache: Option<Arc<PlacementCache>>,
}

/// Configs compare by value for the plain knobs; the cancel token and
/// shared cache compare by identity (they are handles, not values).
impl PartialEq for SynthesisConfig {
    fn eq(&self, other: &Self) -> bool {
        self.merge == other.merge
            && self.cover == other.cover
            && self.keep_dominated == other.keep_dominated
            && self.check_assumption == other.check_assumption
            && self.threads == other.threads
            && self.cancel == other.cancel
            && match (&self.shared_cache, &other.shared_cache) {
                (Some(a), Some(b)) => Arc::ptr_eq(a, b),
                (None, None) => true,
                _ => false,
            }
    }
}

/// Wall-clock time spent in each pipeline phase of one synthesis run.
///
/// The same durations are reported to the global [`ccs_obs`] recorder
/// as spans named `matrices`, `p2p`, `merging`, `placement`,
/// `covering`, `assembly`, and `total`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PhaseTimings {
    /// Γ/Δ matrix computation.
    pub matrices: Duration,
    /// Optimum point-to-point candidates for every arc.
    pub p2p: Duration,
    /// Merge-candidate enumeration (pruning theorems).
    pub merging: Duration,
    /// Hub placement and exact costing of surviving merge subsets.
    pub placement: Duration,
    /// Weighted unate covering.
    pub covering: Duration,
    /// Implementation-graph assembly.
    pub assembly: Duration,
}

impl PhaseTimings {
    /// The phases in pipeline order, with their span names.
    pub fn phases(&self) -> [(&'static str, Duration); 6] {
        [
            ("p2p", self.p2p),
            ("matrices", self.matrices),
            ("merging", self.merging),
            ("placement", self.placement),
            ("covering", self.covering),
            ("assembly", self.assembly),
        ]
    }
}

/// Summed per-worker CPU time of the parallelized phases (the
/// [`ExecStats::busy`] totals of their sweeps).
///
/// Compare against the matching [`PhaseTimings`] wall clocks: with `N`
/// busy workers, CPU time approaches `N ×` wall time. Reported to
/// [`ccs_obs`] as the spans `p2p.cpu`, `merging.cpu`, and
/// `placement.cpu`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PhaseCpuTimings {
    /// Point-to-point candidate sweep.
    pub p2p: Duration,
    /// Merge-enumeration extension/prune sweeps.
    pub merging: Duration,
    /// Hub placement sweep over surviving subsets.
    pub placement: Duration,
}

impl PhaseCpuTimings {
    /// The parallel phases in pipeline order, with their span names.
    pub fn phases(&self) -> [(&'static str, Duration); 3] {
        [
            ("p2p.cpu", self.p2p),
            ("merging.cpu", self.merging),
            ("placement.cpu", self.placement),
        ]
    }
}

/// Statistics collected during one synthesis run.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthesisStats {
    /// Number of constraint arcs.
    pub arc_count: usize,
    /// Cost of the pure point-to-point solution (Def. 2.6 baseline).
    pub p2p_cost: f64,
    /// Enumeration statistics (per-k counts, prunes, Theorem 3.1 drops).
    pub merge_stats: MergeStats,
    /// Merge subsets that survived pruning but were structurally
    /// infeasible with this library.
    pub infeasible_merges: usize,
    /// Merge candidates dropped by the cost-dominance filter.
    pub dominated_dropped: usize,
    /// Merge subsets whose placement solve was skipped by the
    /// lower-bound gate ([`MergeConfig::lb_gate`]); such subsets are
    /// provably dominated (or infeasible) and are counted here instead
    /// of in [`infeasible_merges`](Self::infeasible_merges) /
    /// [`dominated_dropped`](Self::dominated_dropped).
    pub lb_gated: usize,
    /// Weber/two-hub solver invocations avoided by the lower-bound gate
    /// (`lb_gated ×` solves one subset costs with this library).
    pub solves_skipped: u64,
    /// Total candidate columns handed to the UCP.
    pub ucp_cols: usize,
    /// UCP rows (= arcs).
    pub ucp_rows: usize,
    /// Exact-solver statistics, when the exact solver ran.
    pub ucp_stats: Option<ccs_covering::SolveStats>,
    /// Wall-clock time of the run.
    pub elapsed: Duration,
    /// Per-phase wall-clock breakdown of `elapsed`.
    pub phase_timings: PhaseTimings,
    /// Summed per-worker CPU time of the parallelized phases.
    pub phase_cpu: PhaseCpuTimings,
    /// Worker threads used by the parallel phases (resolved, ≥ 1).
    pub threads: usize,
    /// Named per-phase counters (same names as the [`ccs_obs`] counter
    /// stream: `merging.k{k}.examined`, `covering.bnb_nodes`, ...),
    /// derived deterministically from this run alone. Scheduling-
    /// dependent executor metrics (steal counts, queue depths) are
    /// deliberately excluded; only `exec.threads` and `exec.tasks`
    /// appear, and both are fixed for a given thread count.
    pub counters: BTreeMap<String, u64>,
}

/// The output of a synthesis run.
#[derive(Debug, Clone)]
pub struct SynthesisResult {
    /// The minimum-cost architecture.
    pub implementation: ImplementationGraph,
    /// The selected candidates, in covering order.
    pub selected: Vec<Candidate>,
    /// All candidates considered by the covering step (point-to-point
    /// first, then mergings in enumeration order).
    pub candidates: Vec<Candidate>,
    /// The Γ/Δ matrices of the instance.
    pub matrices: DistanceMatrices,
    /// Run statistics.
    pub stats: SynthesisStats,
}

impl SynthesisResult {
    /// Total cost of the selected architecture.
    pub fn total_cost(&self) -> f64 {
        self.implementation.total_cost()
    }

    /// Cost saving of the synthesized architecture relative to the pure
    /// point-to-point solution, as a fraction in `[0, 1)`.
    pub fn saving_vs_p2p(&self) -> f64 {
        if self.stats.p2p_cost <= 0.0 {
            return 0.0;
        }
        1.0 - self.total_cost() / self.stats.p2p_cost
    }
}

/// The synthesis facade: borrows a constraint graph and a library, runs
/// the full pipeline on [`run`](Self::run).
///
/// # Examples
///
/// See the [crate-level quickstart](crate).
#[derive(Debug, Clone)]
pub struct Synthesizer<'a> {
    graph: &'a ConstraintGraph,
    library: &'a Library,
    config: SynthesisConfig,
}

impl<'a> Synthesizer<'a> {
    /// Creates a synthesizer with the default (paper-faithful)
    /// configuration.
    pub fn new(graph: &'a ConstraintGraph, library: &'a Library) -> Self {
        Synthesizer {
            graph,
            library,
            config: SynthesisConfig::default(),
        }
    }

    /// Replaces the configuration.
    #[must_use]
    pub fn with_config(mut self, config: SynthesisConfig) -> Self {
        self.config = config;
        self
    }

    /// The active configuration.
    pub fn config(&self) -> &SynthesisConfig {
        &self.config
    }

    /// Runs the full pipeline.
    ///
    /// # Errors
    ///
    /// * per-arc infeasibility from [`crate::p2p::best_plan`]
    ///   ([`SynthesisError::NoFeasibleLink`] and friends);
    /// * [`SynthesisError::AssumptionViolated`] when
    ///   [`SynthesisConfig::check_assumption`] is set and fails;
    /// * [`SynthesisError::Cover`] from the covering solver.
    pub fn run(&self) -> Result<SynthesisResult, SynthesisError> {
        let start = Instant::now();
        // The whole run profiles as one `synthesize` tree; each phase
        // below opens a child scope (dropped at phase end so siblings
        // never nest). Allocation deltas bracket the same regions.
        let profile_run = ccs_obs::profile::scope("synthesize");
        let mut timings = PhaseTimings::default();
        let mut cpu = PhaseCpuTimings::default();
        let graph = self.graph;
        let library = self.library;
        let exec = Executor::new(self.config.threads);
        let threads = exec.threads();
        let cancel = &self.config.cancel;
        if cancel.is_cancelled() {
            return Err(SynthesisError::Cancelled);
        }

        if self.config.check_assumption {
            if let Some((a, b)) = crate::p2p::check_assumption(graph, library)? {
                return Err(SynthesisError::AssumptionViolated(a, b));
            }
        }

        // Phase 1a: optimum point-to-point candidates (always included —
        // they make the covering matrix feasible by construction). The
        // sweep fans out per arc; folding the slot-ordered results keeps
        // the accumulated p2p cost and the first reported error
        // identical to a serial loop.
        let t = Instant::now();
        let alloc0 = ccs_obs::alloc::stats();
        let profile_phase = ccs_obs::profile::scope("p2p");
        let arc_idxs: Vec<usize> = (0..graph.arc_count()).collect();
        let (p2p_results, p2p_exec) = exec.par_map_stats(&arc_idxs, |_, &i| {
            if cancel.is_cancelled() {
                return Err(SynthesisError::Cancelled);
            }
            point_to_point_candidate(graph, library, i)
        });
        let mut candidates: Vec<Candidate> = Vec::with_capacity(p2p_results.len());
        let mut p2p_cost = 0.0;
        for r in p2p_results {
            let c = r?;
            p2p_cost += c.cost;
            candidates.push(c);
        }
        drop(profile_phase);
        phase_alloc_counters("p2p", &alloc0);
        ccs_obs::counter("p2p.candidates", candidates.len() as u64);
        timings.p2p = t.elapsed();
        cpu.p2p = p2p_exec.busy;

        if cancel.is_cancelled() {
            return Err(SynthesisError::Cancelled);
        }

        // Phase 1b: merge candidates — Γ/Δ matrices, pruned enumeration,
        // then hub placement and exact costing of every survivor.
        let t = Instant::now();
        let alloc0 = ccs_obs::alloc::stats();
        let profile_phase = ccs_obs::profile::scope("matrices");
        let matrices = DistanceMatrices::compute(graph);
        drop(profile_phase);
        phase_alloc_counters("matrices", &alloc0);
        timings.matrices = t.elapsed();

        let t = Instant::now();
        let alloc0 = ccs_obs::alloc::stats();
        let profile_phase = ccs_obs::profile::scope("merging");
        let enumeration = enumerate_with(graph, library, &matrices, &self.config.merge, &exec);
        drop(profile_phase);
        phase_alloc_counters("merging", &alloc0);
        timings.merging = t.elapsed();
        cpu.merging = enumeration.stats.exec.busy;
        if cancel.is_cancelled() {
            return Err(SynthesisError::Cancelled);
        }

        // Hub placement fans out per surviving subset; the shared cache
        // memoizes per-demand placement weights across subsets and
        // workers. Infeasibility/dominance accounting folds the ordered
        // results serially, so counts and kept candidates match a
        // serial run exactly.
        let t = Instant::now();
        let alloc0 = ccs_obs::alloc::stats();
        let profile_phase = ccs_obs::profile::scope("placement");
        let subsets: Vec<&Vec<usize>> = enumeration.all_subsets().collect();
        let cache: Arc<PlacementCache> = self
            .config
            .shared_cache
            .clone()
            .unwrap_or_else(|| Arc::new(PlacementCache::new()));
        let cache = &*cache;
        // Lower-bound gate: a subset whose cheap geometric bound already
        // reaches the dominance threshold below cannot yield a kept
        // candidate (any real solve costs at least the bound), so the
        // Weber/two-hub iteration is skipped outright. The decision is a
        // pure function of the subset, so it is thread-count invariant.
        enum Placed {
            Gated { lb: f64, member_sum: f64 },
            Done(Result<Candidate, InfeasibleReason>),
        }
        let lb_gate = self.config.merge.lb_gate && !self.config.keep_dominated;
        let (placed, placement_exec) = exec.par_map_stats(&subsets, |_, s| {
            if cancel.is_cancelled() {
                return Err(SynthesisError::Cancelled);
            }
            if lb_gate {
                // One profiler call per subset, independent of chunking.
                let _profile = ccs_obs::profile::scope("lb_gate");
                let lb = merge_cost_lower_bound(graph, library, s, cache);
                let member_sum: f64 = s.iter().map(|&i| candidates[i].cost).sum();
                if lb >= member_sum * (1.0 - 1e-6) - 1e-12 {
                    return Ok(Placed::Gated { lb, member_sum });
                }
            }
            merge_candidate_explained(graph, library, s, cache).map(Placed::Done)
        });
        let ledger_on = ledger::enabled();
        let subset_arcs = |s: &[usize]| -> Vec<u32> { s.iter().map(|&i| i as u32).collect() };
        let mut infeasible = 0usize;
        let mut dominated = 0usize;
        let mut lb_gated = 0usize;
        for (subset, r) in subsets.iter().zip(placed) {
            match r? {
                Placed::Gated { lb, member_sum } => {
                    lb_gated += 1;
                    if ledger_on {
                        ledger::emit(DecisionEvent::new(
                            Cause::PlacementLbGated,
                            subset_arcs(subset),
                            lb,
                            member_sum,
                            format!("k={}", subset.len()),
                        ));
                    }
                }
                Placed::Done(Err(reason)) => {
                    infeasible += 1;
                    if ledger_on {
                        ledger::emit(DecisionEvent::new(
                            Cause::PlacementInfeasible,
                            subset_arcs(subset),
                            0.0,
                            0.0,
                            format!("k={},{}", subset.len(), reason.id()),
                        ));
                    }
                }
                Placed::Done(Ok(c)) => {
                    // Hub placement converges to ~1e-9; savings below a
                    // relative 1e-6 are numerical noise, not real wins.
                    let member_sum: f64 = subset.iter().map(|&i| candidates[i].cost).sum();
                    if !self.config.keep_dominated && c.cost >= member_sum * (1.0 - 1e-6) - 1e-12 {
                        dominated += 1;
                        if ledger_on {
                            ledger::emit(DecisionEvent::new(
                                Cause::PlacementDominated,
                                subset_arcs(subset),
                                c.cost,
                                member_sum,
                                format!("k={}", subset.len()),
                            ));
                        }
                    } else {
                        if ledger_on {
                            // `index` is the candidate-slice position the
                            // covering phase (and its ledger events) will
                            // refer to.
                            ledger::emit(DecisionEvent::new(
                                Cause::PlacementKept,
                                subset_arcs(subset),
                                c.cost,
                                member_sum,
                                format!("k={},index={}", subset.len(), candidates.len()),
                            ));
                        }
                        candidates.push(c);
                    }
                }
            }
        }
        // Each un-gated subset costs one Weber solve plus, when mux and
        // demux are both on offer, one two-hub solve — a library-global
        // fact, so the skip count is deterministic.
        let has_muxdemux = library.node_cost(NodeKind::Mux).is_some()
            && library.node_cost(NodeKind::Demux).is_some();
        let has_switch = library.node_cost(NodeKind::Switch).is_some();
        let solves_per_subset: u64 = if has_muxdemux {
            2
        } else {
            u64::from(has_switch)
        };
        let solves_skipped = lb_gated as u64 * solves_per_subset;
        drop(profile_phase);
        phase_alloc_counters("placement", &alloc0);
        timings.placement = t.elapsed();
        cpu.placement = placement_exec.busy;
        ccs_obs::counter("placement.infeasible_merges", infeasible as u64);
        ccs_obs::counter("placement.dominated_dropped", dominated as u64);
        ccs_obs::counter("placement.lb_gated", lb_gated as u64);
        ccs_obs::counter("placement.solves_skipped", solves_skipped);

        if cancel.is_cancelled() {
            return Err(SynthesisError::Cancelled);
        }

        // Phase 2: weighted unate covering.
        let t = Instant::now();
        let alloc0 = ccs_obs::alloc::stats();
        let profile_phase = ccs_obs::profile::scope("covering");
        let outcome = select(&candidates, graph.arc_count(), self.config.cover)?;
        let selected: Vec<Candidate> = outcome
            .selected
            .iter()
            .map(|&i| candidates[i].clone())
            .collect();
        drop(profile_phase);
        phase_alloc_counters("covering", &alloc0);
        timings.covering = t.elapsed();

        // Assemble the architecture.
        let t = Instant::now();
        let alloc0 = ccs_obs::alloc::stats();
        let profile_phase = ccs_obs::profile::scope("assembly");
        let implementation = ImplementationGraph::build(graph, library, &selected);
        drop(profile_phase);
        phase_alloc_counters("assembly", &alloc0);
        timings.assembly = t.elapsed();
        drop(profile_run);

        let elapsed = start.elapsed();
        let mut exec_total = ExecStats::default();
        exec_total.merge(&p2p_exec);
        exec_total.merge(&enumeration.stats.exec);
        exec_total.merge(&placement_exec);
        if ccs_obs::enabled() {
            for (name, wall) in timings.phases() {
                ccs_obs::record_span(name, wall);
            }
            for (name, busy) in cpu.phases() {
                ccs_obs::record_span(name, busy);
            }
            ccs_obs::record_span("total", elapsed);
            ccs_obs::gauge("exec.threads", threads as f64);
        }

        let stats = SynthesisStats {
            arc_count: graph.arc_count(),
            p2p_cost,
            counters: run_counters(
                &enumeration.stats,
                infeasible,
                dominated,
                lb_gated,
                solves_skipped,
                &outcome,
                threads,
                &exec_total,
            ),
            merge_stats: enumeration.stats,
            infeasible_merges: infeasible,
            dominated_dropped: dominated,
            lb_gated,
            solves_skipped,
            ucp_cols: outcome.cols,
            ucp_rows: outcome.rows,
            ucp_stats: outcome.stats,
            elapsed,
            phase_timings: timings,
            phase_cpu: cpu,
            threads,
        };
        Ok(SynthesisResult {
            implementation,
            selected,
            candidates,
            matrices,
            stats,
        })
    }
}

/// Emits the phase's allocation delta (`alloc.<phase>.allocs` /
/// `alloc.<phase>.bytes`) to the global recorder. A no-op when no
/// recorder is installed; zeros when the binary runs without the
/// counting allocator. These counters are scheduling-dependent (workers
/// allocate queues and buffers), so they stay out of the deterministic
/// [`SynthesisStats::counters`] map.
fn phase_alloc_counters(phase: &str, before: &ccs_obs::alloc::AllocStats) {
    if ccs_obs::enabled() {
        let delta = ccs_obs::alloc::stats().delta_since(before);
        ccs_obs::counter(&format!("alloc.{phase}.allocs"), delta.allocs);
        ccs_obs::counter(&format!("alloc.{phase}.bytes"), delta.alloc_bytes);
    }
}

/// Builds the deterministic per-run counter map of
/// [`SynthesisStats::counters`] from the phase outputs (names mirror
/// the [`ccs_obs`] counter stream).
#[allow(clippy::too_many_arguments)] // internal aggregation, not public API
fn run_counters(
    merge_stats: &MergeStats,
    infeasible: usize,
    dominated: usize,
    lb_gated: usize,
    solves_skipped: u64,
    outcome: &crate::cover::CoverOutcome,
    threads: usize,
    exec_total: &ccs_exec::ExecStats,
) -> BTreeMap<String, u64> {
    let mut c = BTreeMap::new();
    c.insert("p2p.candidates".to_string(), outcome.rows as u64);
    // Both are fixed for a given thread count; steal counts and queue
    // depths are scheduling-dependent and stay out of this map.
    c.insert("exec.threads".to_string(), threads as u64);
    c.insert("exec.tasks".to_string(), exec_total.tasks);
    for l in &merge_stats.levels {
        let k = l.k;
        c.insert(format!("merging.k{k}.examined"), l.examined);
        c.insert(format!("merging.k{k}.geometry_pruned"), l.geometry_pruned);
        c.insert(format!("merging.k{k}.bandwidth_pruned"), l.bandwidth_pruned);
        c.insert(format!("merging.k{k}.survivors"), l.survivors);
        c.insert(format!("merging.k{k}.deactivated"), l.deactivated);
    }
    c.insert("placement.infeasible_merges".to_string(), infeasible as u64);
    c.insert("placement.dominated_dropped".to_string(), dominated as u64);
    c.insert("placement.lb_gated".to_string(), lb_gated as u64);
    c.insert("placement.solves_skipped".to_string(), solves_skipped);
    c.insert("covering.rows".to_string(), outcome.rows as u64);
    c.insert("covering.cols".to_string(), outcome.cols as u64);
    if let Some(s) = &outcome.stats {
        c.insert("covering.bnb_nodes".to_string(), s.nodes);
        c.insert("covering.essentials".to_string(), s.essentials);
        c.insert(
            "covering.dominated_columns".to_string(),
            s.dominated_columns,
        );
        c.insert("covering.dominated_rows".to_string(), s.dominated_rows);
        c.insert("covering.bound_prunes".to_string(), s.bound_prunes);
        c.insert(
            "covering.incumbent_updates".to_string(),
            s.incumbent_updates,
        );
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::verify;
    use crate::library::{wan_paper_library, Library, Link, NodeKind};
    use crate::units::Bandwidth;
    use ccs_geom::{Norm, Point2};

    fn mbps(x: f64) -> Bandwidth {
        Bandwidth::from_mbps(x)
    }

    /// Three channels from a cluster to a far node plus one unrelated
    /// channel — merging the cluster should win.
    fn cluster_instance() -> ConstraintGraph {
        let mut b = ConstraintGraph::builder(Norm::Euclidean);
        let a = b.add_port("A", Point2::new(0.0, 0.0));
        let c = b.add_port("B", Point2::new(5.0, 0.0));
        let e = b.add_port("C", Point2::new(-2.8, 4.6));
        let d = b.add_port("D", Point2::new(64.8, 76.4));
        let x = b.add_port("X", Point2::new(200.0, 0.0));
        let y = b.add_port("Y", Point2::new(203.0, 0.0));
        b.add_channel(a, d, mbps(10.0)).unwrap();
        b.add_channel(c, d, mbps(10.0)).unwrap();
        b.add_channel(e, d, mbps(10.0)).unwrap();
        b.add_channel(x, y, mbps(10.0)).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn end_to_end_beats_p2p_and_verifies() {
        let g = cluster_instance();
        let lib = wan_paper_library();
        let r = Synthesizer::new(&g, &lib).run().unwrap();
        assert!(r.total_cost() < r.stats.p2p_cost, "merging should pay off");
        assert!(r.saving_vs_p2p() > 0.0);
        assert!(verify(&g, &lib, &r.implementation).is_empty());
        // Every arc covered exactly by the selection.
        let mut covered = [false; 4];
        for c in &r.selected {
            for &a in &c.arcs {
                covered[a] = true;
            }
        }
        assert!(covered.iter().all(|&x| x));
    }

    #[test]
    fn merged_trio_is_selected() {
        let g = cluster_instance();
        let lib = wan_paper_library();
        let r = Synthesizer::new(&g, &lib).run().unwrap();
        // The three clustered channels share one merge candidate.
        assert!(
            r.selected.iter().any(|c| c.arcs == vec![0, 1, 2]),
            "expected 3-way merge in {:?}",
            r.selected
                .iter()
                .map(|c| c.arcs.clone())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn anytime_cover_matches_exact_with_budget() {
        let g = cluster_instance();
        let lib = wan_paper_library();
        let exact = Synthesizer::new(&g, &lib).run().unwrap();
        let cfg = SynthesisConfig {
            cover: CoverStrategy::Anytime {
                node_limit: 1 << 20,
            },
            ..SynthesisConfig::default()
        };
        let any = Synthesizer::new(&g, &lib).with_config(cfg).run().unwrap();
        assert!((any.total_cost() - exact.total_cost()).abs() < 1e-6);
        assert!(any.stats.ucp_stats.expect("stats present").proven_optimal);
    }

    #[test]
    fn greedy_cover_is_no_better_than_exact() {
        let g = cluster_instance();
        let lib = wan_paper_library();
        let exact = Synthesizer::new(&g, &lib).run().unwrap();
        let cfg = SynthesisConfig {
            cover: CoverStrategy::Greedy,
            ..SynthesisConfig::default()
        };
        let greedy = Synthesizer::new(&g, &lib).with_config(cfg).run().unwrap();
        assert!(greedy.total_cost() >= exact.total_cost() - 1e-6);
        assert!(greedy.stats.ucp_stats.is_none());
    }

    #[test]
    fn keep_dominated_increases_columns_not_cost() {
        let g = cluster_instance();
        let lib = wan_paper_library();
        let lean = Synthesizer::new(&g, &lib).run().unwrap();
        let cfg = SynthesisConfig {
            keep_dominated: true,
            ..SynthesisConfig::default()
        };
        let fat = Synthesizer::new(&g, &lib).with_config(cfg).run().unwrap();
        assert!(fat.stats.ucp_cols >= lean.stats.ucp_cols);
        assert!((fat.total_cost() - lean.total_cost()).abs() < 1e-6);
    }

    #[test]
    fn stats_are_coherent() {
        let g = cluster_instance();
        let lib = wan_paper_library();
        let r = Synthesizer::new(&g, &lib).run().unwrap();
        assert_eq!(r.stats.arc_count, 4);
        assert_eq!(r.stats.ucp_rows, 4);
        assert_eq!(r.stats.ucp_cols, r.candidates.len());
        assert!(r.stats.p2p_cost > 0.0);
        // The far pair (arc 3) never merges: deactivated at level 2.
        assert_eq!(r.stats.merge_stats.deactivated_at[3], Some(2));
    }

    #[test]
    fn assumption_check_passes_on_paper_library() {
        let g = cluster_instance();
        let lib = wan_paper_library();
        let cfg = SynthesisConfig {
            check_assumption: true,
            ..SynthesisConfig::default()
        };
        let r = Synthesizer::new(&g, &lib).with_config(cfg).run();
        assert!(r.is_ok());
    }

    #[test]
    fn infeasible_arc_propagates() {
        // A library with only a short link and no repeater cannot span
        // the channels.
        let lib = Library::builder()
            .link(Link::per_length_capped("short", mbps(100.0), 0.5, 1.0))
            .node(NodeKind::Mux, 0.0)
            .node(NodeKind::Demux, 0.0)
            .build()
            .unwrap();
        let g = cluster_instance();
        let err = Synthesizer::new(&g, &lib).run().unwrap_err();
        assert!(matches!(err, SynthesisError::MissingRepeater(_)));
    }

    #[test]
    fn hop_bounds_disable_merging_and_still_verify() {
        // Three clustered channels that would merge (branch + trunk = 2
        // hops each) are pinned to one hop: the merge candidate becomes
        // infeasible and everything stays point-to-point.
        let mut b = ConstraintGraph::builder(Norm::Euclidean);
        let a = b.add_port("A", Point2::new(0.0, 0.0));
        let c = b.add_port("B", Point2::new(5.0, 0.0));
        let e = b.add_port("C", Point2::new(-2.8, 4.6));
        let d = b.add_port("D", Point2::new(64.8, 76.4));
        for src in [a, c, e] {
            b.add_channel_limited(src, d, mbps(10.0), Some(1)).unwrap();
        }
        let g = b.build().unwrap();
        let lib = wan_paper_library();
        let r = Synthesizer::new(&g, &lib).run().unwrap();
        assert_eq!(r.total_cost(), r.stats.p2p_cost);
        assert!(r
            .selected
            .iter()
            .all(|c| matches!(c.kind, crate::placement::CandidateKind::PointToPoint)));
        assert!(crate::check::verify(&g, &lib, &r.implementation).is_empty());

        // With a 2-hop budget the merge is allowed again (branch + trunk).
        let mut b2 = ConstraintGraph::builder(Norm::Euclidean);
        let a2 = b2.add_port("A", Point2::new(0.0, 0.0));
        let c2 = b2.add_port("B", Point2::new(5.0, 0.0));
        let e2 = b2.add_port("C", Point2::new(-2.8, 4.6));
        let d2 = b2.add_port("D", Point2::new(64.8, 76.4));
        for src in [a2, c2, e2] {
            b2.add_channel_limited(src, d2, mbps(10.0), Some(2))
                .unwrap();
        }
        let g2 = b2.build().unwrap();
        let r2 = Synthesizer::new(&g2, &lib).run().unwrap();
        assert!(r2.total_cost() < r2.stats.p2p_cost);
        assert!(crate::check::verify(&g2, &lib, &r2.implementation).is_empty());
    }

    #[test]
    fn lb_gate_skips_pair_solves_without_changing_results() {
        let g = cluster_instance();
        let lib = wan_paper_library();
        let gated = Synthesizer::new(&g, &lib).run().unwrap();
        // Equal-bandwidth pairs have no economy of scale (λ = 1), so
        // every surviving pair is gated; mux + demux on offer means two
        // solves avoided per gated subset.
        assert!(gated.stats.lb_gated > 0, "gate should fire");
        assert_eq!(gated.stats.solves_skipped, gated.stats.lb_gated as u64 * 2);
        let cfg = SynthesisConfig {
            merge: MergeConfig {
                lb_gate: false,
                ..MergeConfig::default()
            },
            ..SynthesisConfig::default()
        };
        let ungated = Synthesizer::new(&g, &lib).with_config(cfg).run().unwrap();
        assert_eq!(ungated.stats.lb_gated, 0);
        assert_eq!(ungated.stats.solves_skipped, 0);
        // Gating only reclassifies subsets the dominance/infeasibility
        // filters would discard after the solve — never the kept ones.
        assert_eq!(
            gated.stats.lb_gated + gated.stats.infeasible_merges + gated.stats.dominated_dropped,
            ungated.stats.infeasible_merges + ungated.stats.dominated_dropped
        );
        let arcs = |r: &SynthesisResult| {
            r.selected
                .iter()
                .map(|c| c.arcs.clone())
                .collect::<Vec<_>>()
        };
        assert_eq!(arcs(&gated), arcs(&ungated));
        assert_eq!(gated.total_cost(), ungated.total_cost());
        assert_eq!(gated.candidates.len(), ungated.candidates.len());
    }

    #[test]
    fn keep_dominated_disables_the_gate() {
        let g = cluster_instance();
        let lib = wan_paper_library();
        let cfg = SynthesisConfig {
            keep_dominated: true,
            ..SynthesisConfig::default()
        };
        let r = Synthesizer::new(&g, &lib).with_config(cfg).run().unwrap();
        // With dominated candidates kept, every solve must actually run.
        assert_eq!(r.stats.lb_gated, 0);
        assert_eq!(r.stats.solves_skipped, 0);
    }

    #[test]
    fn cancelled_token_aborts_with_no_result() {
        let g = cluster_instance();
        let lib = wan_paper_library();
        let cfg = SynthesisConfig::default();
        cfg.cancel.cancel();
        let err = Synthesizer::new(&g, &lib)
            .with_config(cfg)
            .run()
            .unwrap_err();
        assert_eq!(err, SynthesisError::Cancelled);
        assert_eq!(err.to_string(), "synthesis cancelled");
    }

    #[test]
    fn shared_cache_reuse_is_invisible_in_results() {
        let g = cluster_instance();
        let lib = wan_paper_library();
        let private = Synthesizer::new(&g, &lib).run().unwrap();
        let cache = std::sync::Arc::new(PlacementCache::new());
        let cfg = SynthesisConfig {
            shared_cache: Some(cache.clone()),
            ..SynthesisConfig::default()
        };
        // Two runs against one cache: the second hits warm entries.
        let first = Synthesizer::new(&g, &lib)
            .with_config(cfg.clone())
            .run()
            .unwrap();
        let warm = cache.len();
        assert!(warm > 0, "shared cache should be populated");
        let second = Synthesizer::new(&g, &lib).with_config(cfg).run().unwrap();
        assert_eq!(cache.len(), warm, "second run re-prices nothing");
        for r in [&first, &second] {
            assert_eq!(r.total_cost(), private.total_cost());
            assert_eq!(r.stats.counters, private.stats.counters);
            let arcs = |x: &SynthesisResult| {
                x.selected
                    .iter()
                    .map(|c| c.arcs.clone())
                    .collect::<Vec<_>>()
            };
            assert_eq!(arcs(r), arcs(&private));
        }
    }

    #[test]
    fn single_channel_system_is_trivially_p2p() {
        let mut b = ConstraintGraph::builder(Norm::Euclidean);
        let s = b.add_port("s", Point2::new(0.0, 0.0));
        let t = b.add_port("t", Point2::new(10.0, 0.0));
        b.add_channel(s, t, mbps(5.0)).unwrap();
        let g = b.build().unwrap();
        let lib = wan_paper_library();
        let r = Synthesizer::new(&g, &lib).run().unwrap();
        assert_eq!(r.selected.len(), 1);
        assert_eq!(r.total_cost(), r.stats.p2p_cost);
        assert_eq!(r.candidates.len(), 1); // no merge candidates at all
    }
}
